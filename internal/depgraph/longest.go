package depgraph

import (
	"repro/internal/stacks"
)

// Evaluator is a reusable evaluation scratch for one Graph: the per-node
// distance (and, lazily, predecessor) buffers that longest-path queries need.
// A fresh Evaluator allocates O(nodes) once; every evaluation after that is
// allocation-free, which is what makes dense design-space sweeps cheap.
//
// The Graph itself is never written during evaluation, so any number of
// Evaluators over the same Graph may run concurrently — one per sweep worker.
// A single Evaluator is NOT goroutine-safe: its buffers are the whole point.
//
// Dense sweeps that evaluate many design points against one graph should
// prefer BatchEvaluator, which walks the graph once per K points instead of
// once per point and produces bit-identical results; Evaluator remains the
// right tool for single evaluations and for CriticalPath, which has no
// batched form.
type Evaluator struct {
	g      *Graph
	dist   []int64
	parent []int32 // per-node index into g.edges; allocated on first CriticalPath
}

// NewEvaluator returns an evaluation scratch bound to g.
func (g *Graph) NewEvaluator() *Evaluator {
	return &Evaluator{g: g, dist: make([]int64, g.NumNodes())}
}

// LongestPath evaluates the graph under a latency assignment and returns the
// length in cycles of the longest path ending at the sink (the commit of the
// last µop), reusing the evaluator's distance buffer.
func (e *Evaluator) LongestPath(l *stacks.Latencies) int64 {
	e.fill(l)
	return e.dist[e.g.Sink()]
}

// Dists evaluates the graph and returns the per-node longest-path distances.
// The returned slice is the evaluator's internal buffer: it is valid until
// the next evaluation and must not be retained across calls.
func (e *Evaluator) Dists(l *stacks.Latencies) []int64 {
	e.fill(l)
	return e.dist
}

// fill recomputes the distance buffer for the latency assignment.
func (e *Evaluator) fill(l *stacks.Latencies) {
	g, dist := e.g, e.dist
	for _, n := range g.evalOrder {
		best := int64(0)
		for _, ed := range g.In(n) {
			if d := dist[ed.From] + ed.W.Cycles(l); d > best {
				best = d
			}
		}
		dist[n] = best
	}
}

// CriticalPath evaluates the graph under a latency assignment and returns
// both the longest-path length and the stall-event stack of one longest path
// (ties broken toward the first maximal in-edge). The stack is the CP1
// baseline of the paper: a single critical path translated into a CPI stack.
func (e *Evaluator) CriticalPath(l *stacks.Latencies) (int64, stacks.Stack) {
	g, dist := e.g, e.dist
	if e.parent == nil {
		e.parent = make([]int32, g.NumNodes())
	}
	parent := e.parent
	for _, id := range g.evalOrder {
		best := int64(0)
		bestEdge := int32(-1)
		s := g.nodeStart[id]
		for k, ed := range g.In(id) {
			if d := dist[ed.From] + ed.W.Cycles(l); d > best || bestEdge < 0 {
				best = d
				bestEdge = s + int32(k)
			}
		}
		dist[id] = best
		parent[id] = bestEdge
	}
	var st stacks.Stack
	for node := g.Sink(); ; {
		pe := parent[node]
		if pe < 0 {
			break
		}
		ed := &g.edges[pe]
		for _, p := range ed.W {
			if p.N != 0 {
				st.Add(p.Ev, float64(p.N))
			}
		}
		node = ed.From
	}
	return dist[g.Sink()], st
}

// LongestPath evaluates the graph under a latency assignment and returns the
// length in cycles of the longest path ending at the sink (the commit of the
// last µop). Re-running this per design point is the Fields-style graph
// reconstruction method the paper compares against: O(edges) per point.
//
// This convenience form builds a throwaway Evaluator, allocating one
// O(nodes) distance buffer per call. Sweeps that evaluate many design points
// should reuse a NewEvaluator (zero allocations per point) or, denser still,
// a NewBatchEvaluator (one graph walk per K points).
func (g *Graph) LongestPath(l *stacks.Latencies) int64 {
	return g.NewEvaluator().LongestPath(l)
}

// CriticalPath evaluates the graph under a latency assignment and returns
// both the longest-path length and the stall-event stack of one longest path.
// See Evaluator.CriticalPath; this convenience form builds a throwaway
// Evaluator, allocating its distance and parent buffers (two O(nodes)
// slices) per call.
func (g *Graph) CriticalPath(l *stacks.Latencies) (int64, stacks.Stack) {
	return g.NewEvaluator().CriticalPath(l)
}

// Dists exposes the per-node longest-path distances for diagnostics and
// tests. The returned slice is the throwaway Evaluator's internal buffer;
// since nothing else references that Evaluator, the caller effectively owns
// the slice and may retain or modify it — unlike Evaluator.Dists, whose
// buffer is invalidated by the next evaluation.
func (g *Graph) Dists(l *stacks.Latencies) []int64 {
	return g.NewEvaluator().Dists(l)
}
