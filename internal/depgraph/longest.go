package depgraph

import (
	"repro/internal/stacks"
)

// LongestPath evaluates the graph under a latency assignment and returns the
// length in cycles of the longest path ending at the sink (the commit of the
// last µop). Re-running this per design point is the Fields-style graph
// reconstruction method the paper compares against: O(edges) per point.
func (g *Graph) LongestPath(l *stacks.Latencies) int64 {
	dist := make([]int64, g.NumNodes())
	for _, n := range g.evalOrder {
		best := int64(0)
		for _, e := range g.In(n) {
			if d := dist[e.From] + e.W.Cycles(l); d > best {
				best = d
			}
		}
		dist[n] = best
	}
	return dist[g.Sink()]
}

// CriticalPath evaluates the graph under a latency assignment and returns
// both the longest-path length and the stall-event stack of one longest path
// (ties broken toward the first maximal in-edge). The stack is the CP1
// baseline of the paper: a single critical path translated into a CPI stack.
func (g *Graph) CriticalPath(l *stacks.Latencies) (int64, stacks.Stack) {
	n := g.NumNodes()
	dist := make([]int64, n)
	parent := make([]int32, n) // index into g.edges, -1 for sources
	for i := range parent {
		parent[i] = -1
	}
	for _, id := range g.evalOrder {
		best := int64(0)
		bestEdge := int32(-1)
		s := g.nodeStart[id]
		for k, e := range g.In(id) {
			if d := dist[e.From] + e.W.Cycles(l); d > best || bestEdge < 0 {
				best = d
				bestEdge = s + int32(k)
			}
		}
		dist[id] = best
		parent[id] = bestEdge
	}
	var st stacks.Stack
	for node := g.Sink(); ; {
		pe := parent[node]
		if pe < 0 {
			break
		}
		e := &g.edges[pe]
		for _, p := range e.W {
			if p.N != 0 {
				st.Add(p.Ev, float64(p.N))
			}
		}
		node = e.From
	}
	return dist[g.Sink()], st
}

// Dists exposes the per-node longest-path distances for diagnostics and
// tests.
func (g *Graph) Dists(l *stacks.Latencies) []int64 {
	dist := make([]int64, g.NumNodes())
	for _, n := range g.evalOrder {
		best := int64(0)
		for _, e := range g.In(n) {
			if d := dist[e.From] + e.W.Cycles(l); d > best {
				best = d
			}
		}
		dist[n] = best
	}
	return dist
}
