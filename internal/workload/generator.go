package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// Code layout constants. Each macro-op occupies macroBytes of the static
// code image (x86 instructions average a few bytes; we round up so that
// realistic block counts produce realistic instruction-cache footprints).
const (
	CodeBase   = uint64(0x0040_0000)
	macroBytes = 16
)

// Address-region bases per kind, far apart so regions never alias.
const (
	l1Base    = uint64(1) << 30
	l2Base    = uint64(1) << 31
	memBase   = uint64(3) << 30
	chaseBase = uint64(1) << 32
)

// stream produces the effective addresses of one static memory reference.
type stream struct {
	base   uint64
	size   uint64
	stride uint64
	chase  bool
	pos    uint64
	state  uint64
}

func (s *stream) next() uint64 {
	if s.chase {
		// A multiplicative LCG walk: visits pseudo-random 8-byte slots of
		// the region, defeating both spatial locality and strided
		// prefetch-like reuse.
		s.state = s.state*6364136223846793005 + 1442695040888963407
		slot := (s.state >> 17) % (s.size / 8)
		return s.base + slot*8
	}
	a := s.base + s.pos
	s.pos += s.stride
	if s.pos >= s.size {
		s.pos = 0
	}
	return a
}

// macroTmpl is one static macro-op slot of a basic block.
type macroTmpl struct {
	cat    isa.OpClass // macro category; Branch only as block terminator
	stream int         // memory stream index, -1 when not a memory op
	fuse   bool        // load-op macro: load µop plus dependent compute µop
	fused  isa.OpClass // class of the fused compute µop
	fpDest bool        // load destination goes to the FP bank

	// Terminator fields.
	bias     float64 // probability the branch is taken
	takenTgt int     // successor block when taken
	fallTgt  int     // successor block when not taken
}

// block is one static basic block.
type block struct {
	id     int
	pc     uint64
	phase  int
	macros []macroTmpl
}

// Generator produces the dynamic µop stream of one synthetic benchmark. The
// same (profile, seed) pair always produces the identical stream.
type Generator struct {
	prof   Profile
	blocks []block
	// perPhase[i] lists the block ids belonging to phase i.
	perPhase [][]int
	streams  []*stream
	// phaseStreamPools[i][kind] lists stream indices of region kind
	// (0=L1, 1=L2, 2=Mem, 3=Chase) available to phase i.
	phaseStreamPools [][4][]int
	rng              *rand.Rand

	// Dynamic state.
	cur       int // current block id
	phaseIdx  int
	phaseLeft int // macro-ops remaining in the current phase
	macroIdx  int // next macro slot within the current block
	macroSeq  uint64
	microSeq  uint64
	pending   []isa.MicroOp // µops of the current macro not yet returned
	intRing   ring
	fpRing    ring
	chaseLast map[int]int // stream index -> register holding the last chased pointer
	inductReg int         // integer register serving as strided address base
}

// ring remembers recently written registers of one bank.
type ring struct {
	regs [8]int
	n    int
}

func (r *ring) push(reg int) {
	copy(r.regs[1:], r.regs[:len(r.regs)-1])
	r.regs[0] = reg
	if r.n < len(r.regs) {
		r.n++
	}
}

// pick returns a recently written register: the most recent with probability
// chain, otherwise a geometrically older one.
func (r *ring) pick(rng *rand.Rand, chain float64) int {
	if r.n == 0 {
		return 0
	}
	if rng.Float64() < chain {
		return r.regs[0]
	}
	i := 1
	for i < r.n-1 && rng.Float64() < 0.5 {
		i++
	}
	if i >= r.n {
		i = r.n - 1
	}
	return r.regs[i]
}

// NewGenerator builds the static program for the profile and prepares the
// dynamic state. The stream is infinite; callers take as many µops as they
// need.
func NewGenerator(p Profile, seed int64) *Generator {
	if len(p.Phases) == 0 {
		panic(fmt.Sprintf("workload: profile %s has no phases", p.Name))
	}
	g := &Generator{
		prof:      p,
		rng:       rand.New(rand.NewSource(seed + 1)),
		chaseLast: make(map[int]int),
		inductReg: 0,
	}
	build := rand.New(rand.NewSource(seed))
	g.buildStreams(build)
	g.buildBlocks(build)
	g.phaseIdx = 0
	g.phaseLeft = p.Phases[0].MacroOps
	g.cur = g.perPhase[0][0]
	g.intRing.push(1)
	g.fpRing.push(isa.NumIntRegs)
	return g
}

// buildStreams creates, per phase, a handful of streams of each region kind
// and records their indices for template binding.
func (g *Generator) buildStreams(build *rand.Rand) {
	for pi, ph := range g.prof.Phases {
		mk := func(kind int) int {
			var s *stream
			switch kind {
			case 0:
				s = &stream{base: l1Base + uint64(pi)<<24, size: l1RegionBytes, stride: 8}
			case 1:
				s = &stream{base: l2Base + uint64(pi)<<24, size: l2RegionBytes, stride: 64}
			case 2:
				s = &stream{base: memBase + uint64(pi)<<27, size: memRegionBytes, stride: 64}
			default:
				sz := ph.Locality.ChaseBytes
				if sz <= 0 {
					sz = 8 << 20
				}
				s = &stream{base: chaseBase + uint64(pi)<<27, size: uint64(sz), chase: true,
					state: build.Uint64() | 1}
			}
			g.streams = append(g.streams, s)
			return len(g.streams) - 1
		}
		// A small pool per kind so distinct static references interleave.
		pools := [4][]int{}
		for kind := 0; kind < 4; kind++ {
			for j := 0; j < 2; j++ {
				pools[kind] = append(pools[kind], mk(kind))
			}
		}
		g.phaseStreamPools = append(g.phaseStreamPools, pools)
	}
}

// pickStream selects a stream index for a new static memory reference in the
// given phase according to the phase's locality weights.
func (g *Generator) pickStream(build *rand.Rand, pi int) int {
	loc := g.prof.Phases[pi].Locality
	w := [4]float64{loc.L1, loc.L2, loc.Mem, loc.Chase}
	total := w[0] + w[1] + w[2] + w[3]
	if total <= 0 {
		w = [4]float64{1, 0, 0, 0}
		total = 1
	}
	x := build.Float64() * total
	kind := 0
	for kind < 3 && x >= w[kind] {
		x -= w[kind]
		kind++
	}
	pool := g.phaseStreamPools[pi][kind]
	return pool[build.Intn(len(pool))]
}

// drawCat draws a macro category from the phase mix (excluding Branch, which
// only terminates blocks).
func drawCat(build *rand.Rand, m MixSpec) isa.OpClass {
	type wc struct {
		c isa.OpClass
		w float64
	}
	ws := []wc{
		{isa.IntAlu, m.IntAlu}, {isa.IntMul, m.IntMul}, {isa.IntDiv, m.IntDiv},
		{isa.FpAdd, m.FpAdd}, {isa.FpMul, m.FpMul}, {isa.FpDiv, m.FpDiv},
		{isa.Load, m.Load}, {isa.Store, m.Store},
	}
	var total float64
	for _, w := range ws {
		total += w.w
	}
	if total <= 0 {
		return isa.IntAlu
	}
	x := build.Float64() * total
	for _, w := range ws {
		if x < w.w {
			return w.c
		}
		x -= w.w
	}
	return isa.IntAlu
}

// drawCompute draws a compute class for the fused half of a load-op macro.
func drawCompute(build *rand.Rand, m MixSpec) isa.OpClass {
	for i := 0; i < 8; i++ {
		c := drawCat(build, m)
		if !c.IsMem() {
			return c
		}
	}
	if m.FpAdd+m.FpMul+m.FpDiv > m.IntAlu {
		return isa.FpAdd
	}
	return isa.IntAlu
}

// buildBlocks creates the static basic blocks, split evenly across phases,
// and wires the branch successor graph within each phase.
func (g *Generator) buildBlocks(build *rand.Rand) {
	nPhases := len(g.prof.Phases)
	per := g.prof.Blocks / nPhases
	if per < 2 {
		per = 2
	}
	g.perPhase = make([][]int, nPhases)
	id := 0
	for pi := 0; pi < nPhases; pi++ {
		ph := g.prof.Phases[pi]
		fpShare := fpFraction(ph.Mix)
		first := id
		for b := 0; b < per; b++ {
			blk := block{id: id, phase: pi, pc: CodeBase + uint64(id)*uint64(g.prof.BlockLen)*macroBytes}
			for m := 0; m < g.prof.BlockLen-1; m++ {
				t := macroTmpl{cat: drawCat(build, ph.Mix), stream: -1}
				switch t.cat {
				case isa.Load:
					t.stream = g.pickStream(build, pi)
					t.fpDest = build.Float64() < fpShare
					if build.Float64() < g.prof.LoadOpFuse {
						t.fuse = true
						t.fused = drawCompute(build, ph.Mix)
					}
				case isa.Store:
					t.stream = g.pickStream(build, pi)
				}
				blk.macros = append(blk.macros, t)
			}
			// Terminator branch.
			term := macroTmpl{cat: isa.Branch, stream: -1}
			if build.Float64() < g.prof.BiasedBranches {
				if build.Float64() < 0.5 {
					term.bias = 0.92
				} else {
					term.bias = 0.08
				}
			} else {
				term.bias = 0.35 + 0.3*build.Float64()
			}
			// A third of blocks self-loop when taken (hot loops); the rest
			// jump to a random block of the same phase.
			if build.Float64() < 0.33 {
				term.takenTgt = id
			} else {
				term.takenTgt = first + build.Intn(per)
			}
			term.fallTgt = first + (id-first+1)%per
			blk.macros = append(blk.macros, term)
			g.blocks = append(g.blocks, blk)
			g.perPhase[pi] = append(g.perPhase[pi], id)
			id++
		}
	}
}

func fpFraction(m MixSpec) float64 {
	fp := m.FpAdd + m.FpMul + m.FpDiv
	all := fp + m.IntAlu + m.IntMul + m.IntDiv
	if all <= 0 {
		return 0
	}
	return fp / all
}

// newDest allocates a destination register in the requested bank, avoiding
// the reserved induction register.
func (g *Generator) newDest(fp bool) int {
	if fp {
		r := isa.NumIntRegs + g.rng.Intn(isa.NumFPRegs)
		g.fpRing.push(r)
		return r
	}
	r := 2 + g.rng.Intn(isa.NumIntRegs-2)
	g.intRing.push(r)
	return r
}

func (g *Generator) srcFor(fp bool) int {
	if fp {
		return g.fpRing.pick(g.rng, g.prof.ChainBias)
	}
	return g.intRing.pick(g.rng, g.prof.ChainBias)
}

// Next returns the next µop of the infinite committed stream.
func (g *Generator) Next() isa.MicroOp {
	if len(g.pending) == 0 {
		g.emitMacro()
	}
	u := g.pending[0]
	g.pending = g.pending[1:]
	return u
}

// Take returns the next n µops.
func (g *Generator) Take(n int) []isa.MicroOp {
	out := make([]isa.MicroOp, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// emitMacro expands the current macro template into µops, advances the block
// walk, and handles phase rotation.
func (g *Generator) emitMacro() {
	blk := &g.blocks[g.cur]
	t := blk.macros[g.macroIdx]
	pc := blk.pc + uint64(g.macroIdx)*macroBytes
	mseq := g.macroSeq
	g.macroSeq++

	emit := func(u isa.MicroOp) {
		u.Seq = g.microSeq
		g.microSeq++
		u.MacroSeq = mseq
		u.PC = pc
		g.pending = append(g.pending, u)
	}

	switch t.cat {
	case isa.Load:
		s := g.streams[t.stream]
		addr := s.next()
		var addrReg int
		switch {
		case s.chase:
			if r, ok := g.chaseLast[t.stream]; ok {
				addrReg = r
			} else {
				addrReg = g.inductReg
			}
		case g.rng.Float64() < g.prof.IndexedAddr:
			// Indexed addressing: the address depends on a recent integer
			// result, serializing the access into the chain.
			addrReg = g.intRing.pick(g.rng, 0.5)
		default:
			addrReg = g.inductReg
		}
		// A chased pointer must live in the integer bank so the next hop's
		// address depends on this load.
		dest := g.newDest(t.fpDest && !s.chase)
		if s.chase {
			g.chaseLast[t.stream] = dest
		}
		ld := isa.MicroOp{Class: isa.Load, Dest: dest, Src1: addrReg, Src2: isa.RegNone,
			Addr: addr, SoM: true, EoM: !t.fuse}
		emit(ld)
		if t.fuse {
			fp := t.fused.FU() == isa.FUFP
			op := isa.MicroOp{Class: t.fused, Dest: g.newDest(fp), Src1: dest,
				Src2: g.srcFor(fp), EoM: true}
			emit(op)
		}
	case isa.Store:
		s := g.streams[t.stream]
		addr := s.next()
		st := isa.MicroOp{Class: isa.Store, Dest: isa.RegNone,
			Src1: g.srcFor(false), Src2: g.inductReg, Addr: addr, SoM: true, EoM: true}
		emit(st)
	case isa.Branch:
		taken := g.rng.Float64() < t.bias
		next := t.fallTgt
		if taken {
			next = t.takenTgt
		}
		cmp := isa.MicroOp{Class: isa.IntAlu, Dest: g.newDest(false),
			Src1: g.srcFor(false), Src2: isa.RegNone, SoM: true}
		emit(cmp)
		br := isa.MicroOp{Class: isa.Branch, Dest: isa.RegNone,
			Src1: g.pending[len(g.pending)-1].Dest, Src2: isa.RegNone,
			Taken: taken, Target: g.blocks[next].pc, EoM: true}
		emit(br)
		g.advance(next)
		return
	default: // pure compute macro
		fp := t.cat.FU() == isa.FUFP
		u := isa.MicroOp{Class: t.cat, Dest: g.newDest(fp),
			Src1: g.srcFor(fp), Src2: g.srcFor(fp), SoM: true, EoM: true}
		emit(u)
	}
	g.macroIdx++
	if g.macroIdx >= len(blk.macros) {
		// Defensive: blocks always end with a branch, handled above.
		g.advance(blk.id)
	}
	g.stepPhase()
}

// advance moves the walk to the next block and rotates phases when the
// current phase's macro budget is exhausted.
func (g *Generator) advance(next int) {
	g.macroIdx = 0
	g.cur = next
	g.stepPhase()
}

func (g *Generator) stepPhase() {
	g.phaseLeft--
	if g.phaseLeft > 0 {
		return
	}
	g.phaseIdx = (g.phaseIdx + 1) % len(g.prof.Phases)
	g.phaseLeft = g.prof.Phases[g.phaseIdx].MacroOps
	g.cur = g.perPhase[g.phaseIdx][0]
	g.macroIdx = 0
}

// BlockOf maps a µop PC back to its static basic-block index, for
// basic-block-vector collection.
func (g *Generator) BlockOf(pc uint64) int {
	if pc < CodeBase {
		return 0
	}
	i := int((pc - CodeBase) / (uint64(g.prof.BlockLen) * macroBytes))
	if i >= len(g.blocks) {
		i = len(g.blocks) - 1
	}
	return i
}

// NumBlocks returns the static basic-block count of the built program.
func (g *Generator) NumBlocks() int { return len(g.blocks) }

// DataLines returns one address per cache line of every cache-fitting
// strided data region, for pre-warming the data hierarchy: a resident
// working set would have been touched long before the sampled region.
// Memory-sized and pointer-chase regions are omitted — their misses are the
// workload's character.
func (g *Generator) DataLines() []uint64 {
	const lineBytes = 64
	const fitBound = 2 << 20 // only regions that comfortably fit in the L2
	var addrs []uint64
	for _, s := range g.streams {
		if s.chase || s.size > fitBound {
			continue
		}
		for off := uint64(0); off < s.size; off += lineBytes {
			addrs = append(addrs, s.base+off)
		}
	}
	return addrs
}

// CodeLines returns one address per cache line of the static code image,
// for pre-warming instruction caches.
func (g *Generator) CodeLines() []uint64 {
	const lineBytes = 64
	end := CodeBase + uint64(len(g.blocks)*g.prof.BlockLen)*macroBytes
	var pcs []uint64
	for pc := CodeBase; pc < end; pc += lineBytes {
		pcs = append(pcs, pc)
	}
	return pcs
}

// Stream is a convenience wrapper producing the first n µops of the
// benchmark for the given seed.
func Stream(p Profile, seed int64, n int) []isa.MicroOp {
	return NewGenerator(p, seed).Take(n)
}
