package workload

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func TestStreamDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		a := Stream(p, 42, 5000)
		b := Stream(p, 42, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: streams diverge at µop %d", p.Name, i)
			}
		}
		c := Stream(p, 43, 5000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", p.Name)
		}
	}
}

func TestStreamWellFormed(t *testing.T) {
	for _, p := range Profiles() {
		uops := Stream(p, 7, 8000)
		inMacro := false
		for i := range uops {
			u := &uops[i]
			if err := u.Validate(); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if u.Seq != uint64(i) {
				t.Fatalf("%s: µop %d has Seq %d", p.Name, i, u.Seq)
			}
			if u.SoM == inMacro {
				t.Fatalf("%s: macro-op framing broken at µop %d", p.Name, i)
			}
			inMacro = !u.EoM
			if u.PC < CodeBase {
				t.Fatalf("%s: µop %d below code base", p.Name, i)
			}
		}
	}
}

func TestMixApproximatesProfile(t *testing.T) {
	p, _ := ByName("456.hmmer")
	uops := Stream(p, 3, 40000)
	counts := map[isa.OpClass]float64{}
	macros := 0.0
	for i := range uops {
		if uops[i].SoM {
			macros++
		}
		counts[uops[i].Class]++
	}
	// hmmer is integer code: no FP µops at all, and loads near the profile
	// weight relative to macro-ops.
	if counts[isa.FpAdd]+counts[isa.FpMul]+counts[isa.FpDiv] > 0 {
		t.Fatal("hmmer profile emitted FP µops")
	}
	loadFrac := counts[isa.Load] / macros
	if math.Abs(loadFrac-0.30) > 0.08 {
		t.Fatalf("load fraction per macro = %.3f, want ~0.30", loadFrac)
	}
	if counts[isa.Branch] == 0 || counts[isa.Store] == 0 {
		t.Fatal("missing branches or stores")
	}
}

func TestChaseLoadsDependOnPreviousLoad(t *testing.T) {
	p, _ := ByName("429.mcf")
	gen := NewGenerator(p, 5)
	uops := gen.Take(20000)
	// At least some loads must use a register written by an earlier load
	// (the chased pointer living in the integer bank).
	lastLoadDest := map[int]bool{}
	chained := 0
	for i := range uops {
		u := &uops[i]
		if u.Class == isa.Load {
			if lastLoadDest[u.Src1] {
				chained++
			}
			if u.Dest != isa.RegNone {
				lastLoadDest[u.Dest] = true
			}
		}
	}
	if chained < 100 {
		t.Fatalf("mcf produced only %d chained loads", chained)
	}
}

func TestBlockOfInvertsPCs(t *testing.T) {
	p, _ := ByName("416.gamess")
	gen := NewGenerator(p, 1)
	uops := gen.Take(2000)
	for i := range uops {
		b := gen.BlockOf(uops[i].PC)
		if b < 0 || b >= gen.NumBlocks() {
			t.Fatalf("µop %d maps to block %d of %d", i, b, gen.NumBlocks())
		}
	}
}

func TestCodeAndDataLines(t *testing.T) {
	p, _ := ByName("416.gamess")
	gen := NewGenerator(p, 1)
	lines := gen.CodeLines()
	if len(lines) == 0 {
		t.Fatal("no code lines")
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] != lines[i-1]+64 {
			t.Fatal("code lines must be consecutive 64B lines")
		}
	}
	data := gen.DataLines()
	if len(data) == 0 {
		t.Fatal("no data lines for a cache-resident profile")
	}
	// mcf's chase region must NOT be pre-warmed.
	mcf, _ := ByName("429.mcf")
	mg := NewGenerator(mcf, 1)
	for _, a := range mg.DataLines() {
		if a >= uint64(1)<<32 {
			t.Fatalf("chase-region line %#x in warm set", a)
		}
	}
}

func TestPhaseRotation(t *testing.T) {
	p, _ := ByName("401.bzip2")
	if len(p.Phases) < 2 {
		t.Fatal("bzip2 profile must be phased")
	}
	gen := NewGenerator(p, 2)
	// Drive past the first phase boundary and observe the PC range move to
	// the second phase's block subset.
	budget := p.Phases[0].MacroOps + 2000
	var seen []int
	for i := 0; i < budget; {
		u := gen.Next()
		if u.SoM {
			i++
		}
		seen = append(seen, gen.BlockOf(u.PC))
	}
	first := seen[0]
	last := seen[len(seen)-1]
	perPhase := gen.NumBlocks() / len(p.Phases)
	if first >= perPhase {
		t.Fatalf("execution must start in phase 0 blocks, got block %d", first)
	}
	if last < perPhase {
		t.Fatalf("execution must move to phase 1 blocks, still at %d", last)
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("no.such"); ok {
		t.Fatal("unknown profile found")
	}
	names := Names()
	if len(names) != len(Profiles()) {
		t.Fatal("Names and Profiles disagree")
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Fatalf("%s unfindable", n)
		}
	}
}

func TestTakeMatchesNext(t *testing.T) {
	p, _ := ByName("470.lbm")
	a := NewGenerator(p, 4)
	b := NewGenerator(p, 4)
	batch := a.Take(500)
	for i := range batch {
		if u := b.Next(); u != batch[i] {
			t.Fatalf("Take and Next diverge at %d", i)
		}
	}
}
