// Package workload generates deterministic synthetic µop streams that stand
// in for the paper's SPEC CPU 2006 binaries. Each profile reproduces the
// *characteristics* the RpStacks methodology is sensitive to — instruction
// mix, working-set sizes (which levels serve the loads), dependency-chain
// shape (how much latency overlaps), branch predictability, static code
// footprint and phase structure — rather than the literal programs. The
// generated program is a set of static basic blocks connected by a Markov
// chain of branches, so I-caches, branch predictors and SimPoint's
// basic-block vectors all see realistic repeated structure.
package workload

// MixSpec gives the macro-op category mix of a phase. The fields are
// weights; they are normalized internally and need not sum to one.
type MixSpec struct {
	IntAlu, IntMul, IntDiv float64
	FpAdd, FpMul, FpDiv    float64
	Load, Store, Branch    float64
}

// LocalitySpec distributes data accesses over address regions with different
// residency: L1-resident, L2-resident and memory-resident strided streams,
// plus a pointer-chasing region that defeats spatial locality.
type LocalitySpec struct {
	L1, L2, Mem, Chase float64 // weights over the four region kinds
	ChaseBytes         int     // pointer-chase region size (bytes)
}

// PhaseSpec describes one program phase: the block subset it executes, its
// mix and locality. Phases give SimPoint's clustering something to find.
type PhaseSpec struct {
	Mix      MixSpec
	Locality LocalitySpec
	// MacroOps is the phase length in macro-ops before the program moves to
	// the next phase (cyclically).
	MacroOps int
}

// Profile is a complete synthetic benchmark description.
type Profile struct {
	Name string
	// Static code shape: Blocks basic blocks of BlockLen macro-ops each.
	// Large footprints produce instruction-cache misses.
	Blocks, BlockLen int
	// ChainBias is the probability that a µop's first source is the
	// previous µop's destination, forming serial dependency chains; the
	// complement draws sources from older results (more ILP).
	ChainBias float64
	// BiasedBranches is the fraction of static branches with a strongly
	// biased (predictable) direction; the rest flip near-randomly and
	// produce mispredictions.
	BiasedBranches float64
	// LoadOpFuse is the probability that a load macro-op also carries a
	// dependent compute µop (x86 load-op form).
	LoadOpFuse float64
	// IndexedAddr is the probability that a strided load's address depends
	// on a recently computed integer value (indexed addressing), putting
	// the load's access latency onto the dependency chain rather than in
	// its shadow.
	IndexedAddr float64
	// Phases of the program, cycled in order. At least one.
	Phases []PhaseSpec
}

// Region sizes for the strided streams, chosen against the Table II
// hierarchy (48KB L1, 4MB L2) and sized so that residency classes reach
// steady state within warmup at the trace lengths this repository uses:
// the L1 region stays cache-resident, the L2 region wraps quickly enough to
// hit in L2 after its first pass, and the memory region never fits.
const (
	l1RegionBytes  = 12 << 10
	l2RegionBytes  = 96 << 10
	memRegionBytes = 64 << 20
)

// phase builds a single-phase list, the common case.
func phase(mix MixSpec, loc LocalitySpec) []PhaseSpec {
	return []PhaseSpec{{Mix: mix, Locality: loc, MacroOps: 1 << 30}}
}

// Profiles returns the synthetic SPEC CPU 2006 stand-in suite in benchmark
// number order. The tuning targets the qualitative bottleneck map of the
// paper's Figure 12: e.g. 416.gamess is FP-heavy with L1D/Fadd/Fmul
// bottlenecks, 429.mcf is memory-bound pointer chasing, 458.sjeng is
// branchy integer code.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "400.perlbench", Blocks: 420, BlockLen: 12,
			ChainBias: 0.35, BiasedBranches: 0.80, LoadOpFuse: 0.5, IndexedAddr: 0.35,
			Phases: phase(
				MixSpec{IntAlu: 44, IntMul: 1, Load: 26, Store: 12, Branch: 17},
				LocalitySpec{L1: 70, L2: 22, Mem: 3, Chase: 5, ChaseBytes: 8 << 20}),
		},
		{
			Name: "401.bzip2", Blocks: 90, BlockLen: 14,
			ChainBias: 0.40, BiasedBranches: 0.72, LoadOpFuse: 0.5, IndexedAddr: 0.4,
			Phases: []PhaseSpec{
				{Mix: MixSpec{IntAlu: 46, Load: 28, Store: 14, Branch: 12},
					Locality: LocalitySpec{L1: 55, L2: 38, Mem: 7, Chase: 0},
					MacroOps: 60000},
				{Mix: MixSpec{IntAlu: 50, Load: 24, Store: 14, Branch: 12},
					Locality: LocalitySpec{L1: 80, L2: 18, Mem: 2, Chase: 0},
					MacroOps: 40000},
			},
		},
		{
			Name: "403.gcc", Blocks: 900, BlockLen: 9,
			ChainBias: 0.35, BiasedBranches: 0.75, LoadOpFuse: 0.45, IndexedAddr: 0.35,
			Phases: phase(
				MixSpec{IntAlu: 42, IntMul: 1, Load: 26, Store: 12, Branch: 19},
				LocalitySpec{L1: 60, L2: 28, Mem: 6, Chase: 6, ChaseBytes: 16 << 20}),
		},
		{
			Name: "410.bwaves", Blocks: 40, BlockLen: 24,
			ChainBias: 0.30, BiasedBranches: 0.97, LoadOpFuse: 0.6, IndexedAddr: 0.35,
			Phases: phase(
				MixSpec{IntAlu: 12, FpAdd: 24, FpMul: 22, FpDiv: 1, Load: 28, Store: 9, Branch: 4},
				LocalitySpec{L1: 35, L2: 35, Mem: 30, Chase: 0}),
		},
		{
			Name: "416.gamess", Blocks: 120, BlockLen: 20,
			ChainBias: 0.45, BiasedBranches: 0.95, LoadOpFuse: 0.6, IndexedAddr: 0.55,
			Phases: phase(
				MixSpec{IntAlu: 14, FpAdd: 23, FpMul: 20, FpDiv: 2, Load: 30, Store: 7, Branch: 4},
				LocalitySpec{L1: 90, L2: 9, Mem: 1, Chase: 0}),
		},
		{
			Name: "429.mcf", Blocks: 60, BlockLen: 8,
			ChainBias: 0.55, BiasedBranches: 0.70, LoadOpFuse: 0.4, IndexedAddr: 0.3,
			Phases: phase(
				MixSpec{IntAlu: 34, Load: 36, Store: 10, Branch: 20},
				LocalitySpec{L1: 30, L2: 15, Mem: 10, Chase: 45, ChaseBytes: 64 << 20}),
		},
		{
			Name: "433.milc", Blocks: 50, BlockLen: 22,
			ChainBias: 0.35, BiasedBranches: 0.96, LoadOpFuse: 0.55, IndexedAddr: 0.35,
			Phases: phase(
				MixSpec{IntAlu: 12, FpAdd: 22, FpMul: 24, Load: 30, Store: 9, Branch: 3},
				LocalitySpec{L1: 30, L2: 30, Mem: 40, Chase: 0}),
		},
		{
			Name: "437.leslie3d", Blocks: 70, BlockLen: 26,
			ChainBias: 0.50, BiasedBranches: 0.96, LoadOpFuse: 0.6, IndexedAddr: 0.5,
			Phases: phase(
				MixSpec{IntAlu: 12, FpAdd: 20, FpMul: 26, FpDiv: 2, Load: 28, Store: 8, Branch: 4},
				LocalitySpec{L1: 55, L2: 30, Mem: 15, Chase: 0}),
		},
		{
			Name: "444.namd", Blocks: 80, BlockLen: 24,
			ChainBias: 0.40, BiasedBranches: 0.95, LoadOpFuse: 0.6, IndexedAddr: 0.5,
			Phases: phase(
				MixSpec{IntAlu: 16, FpAdd: 24, FpMul: 22, FpDiv: 1, Load: 26, Store: 7, Branch: 4},
				LocalitySpec{L1: 85, L2: 13, Mem: 2, Chase: 0}),
		},
		{
			Name: "450.soplex", Blocks: 160, BlockLen: 12,
			ChainBias: 0.40, BiasedBranches: 0.85, LoadOpFuse: 0.5, IndexedAddr: 0.4,
			Phases: phase(
				MixSpec{IntAlu: 20, FpAdd: 16, FpMul: 14, FpDiv: 2, Load: 30, Store: 8, Branch: 10},
				LocalitySpec{L1: 40, L2: 35, Mem: 25, Chase: 0}),
		},
		{
			Name: "453.povray", Blocks: 260, BlockLen: 14,
			ChainBias: 0.45, BiasedBranches: 0.85, LoadOpFuse: 0.55, IndexedAddr: 0.45,
			Phases: phase(
				MixSpec{IntAlu: 22, FpAdd: 17, FpMul: 17, FpDiv: 1.5, Load: 26, Store: 6, Branch: 10},
				LocalitySpec{L1: 88, L2: 10, Mem: 2, Chase: 0}),
		},
		{
			Name: "456.hmmer", Blocks: 30, BlockLen: 18,
			ChainBias: 0.30, BiasedBranches: 0.92, LoadOpFuse: 0.6, IndexedAddr: 0.5,
			Phases: phase(
				MixSpec{IntAlu: 48, IntMul: 2, Load: 30, Store: 12, Branch: 8},
				LocalitySpec{L1: 85, L2: 14, Mem: 1, Chase: 0}),
		},
		{
			Name: "458.sjeng", Blocks: 300, BlockLen: 9,
			ChainBias: 0.40, BiasedBranches: 0.55, LoadOpFuse: 0.45, IndexedAddr: 0.35,
			Phases: phase(
				MixSpec{IntAlu: 42, IntMul: 2, IntDiv: 1, Load: 24, Store: 9, Branch: 22},
				LocalitySpec{L1: 70, L2: 25, Mem: 5, Chase: 0}),
		},
		{
			Name: "462.libquantum", Blocks: 16, BlockLen: 12,
			ChainBias: 0.25, BiasedBranches: 0.98, LoadOpFuse: 0.5, IndexedAddr: 0.15,
			Phases: phase(
				MixSpec{IntAlu: 40, Load: 30, Store: 16, Branch: 14},
				LocalitySpec{L1: 10, L2: 15, Mem: 75, Chase: 0}),
		},
		{
			Name: "470.lbm", Blocks: 24, BlockLen: 28,
			ChainBias: 0.30, BiasedBranches: 0.98, LoadOpFuse: 0.6, IndexedAddr: 0.2,
			Phases: phase(
				MixSpec{IntAlu: 10, FpAdd: 22, FpMul: 20, Load: 30, Store: 15, Branch: 3},
				LocalitySpec{L1: 20, L2: 20, Mem: 60, Chase: 0}),
		},
		{
			Name: "471.omnetpp", Blocks: 380, BlockLen: 10,
			ChainBias: 0.50, BiasedBranches: 0.72, LoadOpFuse: 0.45, IndexedAddr: 0.3,
			Phases: phase(
				MixSpec{IntAlu: 36, Load: 30, Store: 12, Branch: 22},
				LocalitySpec{L1: 40, L2: 25, Mem: 5, Chase: 30, ChaseBytes: 32 << 20}),
		},
		{
			Name: "483.xalancbmk", Blocks: 700, BlockLen: 8,
			ChainBias: 0.40, BiasedBranches: 0.78, LoadOpFuse: 0.45, IndexedAddr: 0.35,
			Phases: phase(
				MixSpec{IntAlu: 38, Load: 30, Store: 10, Branch: 22},
				LocalitySpec{L1: 55, L2: 30, Mem: 5, Chase: 10, ChaseBytes: 16 << 20}),
		},
	}
}

// ByName returns the named profile from the suite.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the suite's benchmark names in order.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
