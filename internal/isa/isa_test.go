package isa

import (
	"testing"

	"repro/internal/stacks"
)

func TestOpClassStringsAndValidity(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		if !c.Valid() || c.String() == "" {
			t.Fatalf("class %d invalid or unnamed", c)
		}
	}
	if NumOpClasses.Valid() {
		t.Fatal("NumOpClasses must be invalid")
	}
	if OpClass(99).String() == "" {
		t.Fatal("out-of-range class must still render")
	}
}

func TestIsMem(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Fatal("loads and stores access memory")
	}
	for _, c := range []OpClass{IntAlu, IntMul, IntDiv, FpAdd, FpMul, FpDiv, Branch} {
		if c.IsMem() {
			t.Fatalf("%s is not a memory class", c)
		}
	}
}

func TestExecEventMapping(t *testing.T) {
	want := map[OpClass]stacks.Event{
		IntAlu: stacks.IntAlu, Branch: stacks.IntAlu,
		IntMul: stacks.IntMul, IntDiv: stacks.IntDiv,
		FpAdd: stacks.FpAdd, FpMul: stacks.FpMul, FpDiv: stacks.FpDiv,
		Store: stacks.Store,
	}
	for c, e := range want {
		if got := c.ExecEvent(); got != e {
			t.Errorf("%s exec event = %s, want %s", c, got, e)
		}
	}
}

func TestExecEventPanicsForLoad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Load.ExecEvent must panic: load latency is level-decided")
		}
	}()
	Load.ExecEvent()
}

func TestFUMapping(t *testing.T) {
	want := map[OpClass]FUClass{
		Load: FULoad, Store: FUStore,
		FpAdd: FUFP, FpMul: FUFP, FpDiv: FUFP,
		IntMul: FULongALU, IntDiv: FULongALU,
		IntAlu: FUBaseALU, Branch: FUBaseALU,
	}
	for c, f := range want {
		if got := c.FU(); got != f {
			t.Errorf("%s FU = %s, want %s", c, got, f)
		}
	}
	if FULoad.String() != "LD" || FUFP.String() != "FP" {
		t.Fatal("FU names must match Table II")
	}
}

func TestMicroOpValidate(t *testing.T) {
	ok := MicroOp{Class: IntAlu, Dest: 3, Src1: 1, Src2: RegNone}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid µop rejected: %v", err)
	}
	bad := ok
	bad.Class = NumOpClasses
	if bad.Validate() == nil {
		t.Fatal("invalid class accepted")
	}
	bad = ok
	bad.Src1 = NumRegs
	if bad.Validate() == nil {
		t.Fatal("out-of-range register accepted")
	}
	mem := MicroOp{Class: Load, Dest: 2, Src1: 0, Src2: RegNone}
	if mem.Validate() == nil {
		t.Fatal("memory µop without address accepted")
	}
	mem.Addr = 0x1000
	if err := mem.Validate(); err != nil {
		t.Fatalf("valid load rejected: %v", err)
	}
}
