// Package isa models the dynamic instruction stream of the target x86-style
// microarchitecture at micro-op granularity. A macro-op (x86 instruction)
// decodes into one or more micro-ops; issue happens per micro-op while commit
// happens per macro-op, which is the granularity mismatch the paper's
// MacroOp-boundary trace records (SoM/EoM) exist to capture.
package isa

import (
	"fmt"

	"repro/internal/stacks"
)

// OpClass classifies a micro-op by the functional unit work it performs.
type OpClass uint8

const (
	IntAlu OpClass = iota // simple integer/logic operation
	IntMul                // integer multiply
	IntDiv                // integer divide
	FpAdd                 // floating-point add/subtract
	FpMul                 // floating-point multiply
	FpDiv                 // floating-point divide
	Load                  // memory read
	Store                 // memory write
	Branch                // control transfer (resolves on a base ALU)

	NumOpClasses // not a valid class
)

var opClassNames = [NumOpClasses]string{
	IntAlu: "IntAlu", IntMul: "IntMul", IntDiv: "IntDiv",
	FpAdd: "FpAdd", FpMul: "FpMul", FpDiv: "FpDiv",
	Load: "Load", Store: "Store", Branch: "Branch",
}

// String returns the canonical class name.
func (c OpClass) String() string {
	if c < NumOpClasses {
		return opClassNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// Valid reports whether c names a real op class.
func (c OpClass) Valid() bool { return c < NumOpClasses }

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// ExecEvent returns the stall-event kind whose latency governs the execute
// stage of this class. Loads are special: their execute latency is decided
// by the cache level that serves them, so they have no fixed execute event.
func (c OpClass) ExecEvent() stacks.Event {
	switch c {
	case IntAlu, Branch:
		return stacks.IntAlu
	case IntMul:
		return stacks.IntMul
	case IntDiv:
		return stacks.IntDiv
	case FpAdd:
		return stacks.FpAdd
	case FpMul:
		return stacks.FpMul
	case FpDiv:
		return stacks.FpDiv
	case Store:
		return stacks.Store
	default:
		panic(fmt.Sprintf("isa: no fixed execute event for %s", c))
	}
}

// FUClass identifies a functional-unit pool (Table II of the paper).
type FUClass uint8

const (
	FULoad    FUClass = iota // LD units
	FUStore                  // ST units
	FUFP                     // FP units
	FUBaseALU                // base ALUs (simple integer ops and branches)
	FULongALU                // long-latency integer units (mul/div)

	NumFUClasses // not a valid class
)

var fuClassNames = [NumFUClasses]string{
	FULoad: "LD", FUStore: "ST", FUFP: "FP", FUBaseALU: "BaseALU", FULongALU: "LongALU",
}

// String returns the Table II name of the functional-unit pool.
func (f FUClass) String() string {
	if f < NumFUClasses {
		return fuClassNames[f]
	}
	return fmt.Sprintf("FUClass(%d)", uint8(f))
}

// FU returns the functional-unit pool the class executes on.
func (c OpClass) FU() FUClass {
	switch c {
	case Load:
		return FULoad
	case Store:
		return FUStore
	case FpAdd, FpMul, FpDiv:
		return FUFP
	case IntMul, IntDiv:
		return FULongALU
	default:
		return FUBaseALU
	}
}

// Register file shape. Registers 0..NumIntRegs-1 are integer, the rest are
// floating point. RegNone marks an absent operand.
const (
	NumIntRegs = 16
	NumFPRegs  = 16
	NumRegs    = NumIntRegs + NumFPRegs
	RegNone    = -1
)

// MicroOp is one dynamic micro-op as produced by the workload front end and
// consumed by the timing simulator.
type MicroOp struct {
	Seq      uint64  // dynamic micro-op sequence number, starting at 0
	MacroSeq uint64  // dynamic macro-op (x86 instruction) number
	SoM, EoM bool    // start / end of macro-op
	Class    OpClass // functional class
	PC       uint64  // byte address of the owning macro-op

	// Architectural register operands; RegNone when absent. Renaming turns
	// these into physical-register dataflow inside the simulator.
	Dest, Src1, Src2 int

	// Addr is the effective byte address for loads and stores.
	Addr uint64

	// Branch behaviour (Class == Branch only).
	Taken  bool   // actual direction
	Target uint64 // actual target PC
}

// Validate checks structural well-formedness of a micro-op.
func (u *MicroOp) Validate() error {
	if !u.Class.Valid() {
		return fmt.Errorf("isa: µop %d has invalid class", u.Seq)
	}
	for _, r := range [...]int{u.Dest, u.Src1, u.Src2} {
		if r != RegNone && (r < 0 || r >= NumRegs) {
			return fmt.Errorf("isa: µop %d has out-of-range register %d", u.Seq, r)
		}
	}
	if u.Class.IsMem() && u.Addr == 0 {
		return fmt.Errorf("isa: memory µop %d has no address", u.Seq)
	}
	return nil
}
