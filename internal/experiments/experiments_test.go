package experiments

import (
	"strings"
	"testing"

	"repro/internal/stacks"
)

func testRunner() *Runner { return NewRunner(12000) }

// TestFig11Headline checks the paper's central accuracy claim in shape:
// over the suite, RpStacks' mean prediction error is below both CP1's and
// FMT's, in the halved scenario and decisively in the aggressive one.
func TestFig11Headline(t *testing.T) {
	r := testRunner()
	a, err := r.Fig11("a", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", a)
	b, err := r.Fig11("b", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", b)
	for _, res := range []*Fig11Result{a, b} {
		rp, cp, fm := res.Means()
		if rp >= cp {
			t.Errorf("fig11%s: RpStacks mean error %.2f%% not below CP1 %.2f%%", res.Label, rp, cp)
		}
		if rp >= fm {
			t.Errorf("fig11%s: RpStacks mean error %.2f%% not below FMT %.2f%%", res.Label, rp, fm)
		}
	}
}

// TestFig3FMTBlindToOverlap checks the crafted-overlap demonstration: FMT
// charges nothing to the FP divides hidden under memory misses, while
// RpStacks sees them.
func TestFig3FMTBlindToOverlap(t *testing.T) {
	r := testRunner()
	f, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	if got := f.FmtStack.Counts[stacks.FpDiv]; got != 0 {
		t.Errorf("FMT charged %.0f FpDiv occurrences; pipeline-stall analysis should be blind to them", got)
	}
	if !f.HasHiddenPath(stacks.FpDiv) {
		t.Errorf("RpStacks lost the FP-divide path entirely")
	}
}

// TestFig4CriticalPathSwitch checks that after halving the memory latency
// the ex-critical-path prediction degrades while RpStacks stays accurate.
func TestFig4CriticalPathSwitch(t *testing.T) {
	r := testRunner()
	f, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	if f.RpErr > 10 {
		t.Errorf("RpStacks error %.1f%% too large after the critical-path switch", f.RpErr)
	}
	if f.Cp1Err < f.RpErr {
		t.Errorf("CP1 error %.1f%% unexpectedly below RpStacks %.1f%%", f.Cp1Err, f.RpErr)
	}
}

// TestRegistryRuns smoke-runs the cheap experiments end to end.
func TestRegistryRuns(t *testing.T) {
	r := testRunner()
	for _, id := range []string{"fig3", "fig4", "fig5"} {
		d, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := d.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out.String(), "Figure") {
			t.Errorf("%s: output does not mention its figure:\n%s", id, out)
		}
	}
}
