package experiments

// golden.go — deterministic "golden views" of the figure experiments.
//
// Each Fig* result mixes deterministic model outputs (cycle counts, CPIs,
// stack decompositions, design-space sizes) with host wall-clock timings
// (per-point costs, sweep speedups, crossover points). The views below quote
// only the former, so they are bit-stable across hosts and runs: the
// simulator is deterministic for a (workload, seed, µop budget, config)
// tuple, and every derived number here is pure arithmetic on its outputs.
// golden_test.go pins these views as committed files under testdata/.
//
// Long prediction series are summarized as a SHA-256 digest over the
// little-endian float64 bits of every point's cycle count (in point order)
// plus a short explicit prefix, so a golden stays reviewable while still
// covering the full series.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dse"
	"repro/internal/stacks"
)

// resultsDigest hashes a sweep's predicted cycle series.
func resultsDigest(results []dse.Result) string {
	h := sha256.New()
	var b [8]byte
	for i := range results {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(results[i].Cycles))
		h.Write(b[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// resultsPrefix returns the first n cycle counts of a sweep.
func resultsPrefix(results []dse.Result, n int) []float64 {
	if n > len(results) {
		n = len(results)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = results[i].Cycles
	}
	return out
}

// stackCounts renders a stack as event-name → cycle-event count, dropping
// zero entries so goldens only list the events the workload actually hit.
func stackCounts(s *stacks.Stack) map[string]float64 {
	out := map[string]float64{}
	for e := stacks.Event(0); e < stacks.NumEvents; e++ {
		if c := s.Counts[e]; c != 0 {
			out[e.String()] = c
		}
	}
	return out
}

// latPoint renders a latency assignment as event-name → cycles for the
// events that differ from the baseline (the knobs a scenario turned).
func latPoint(base, l *stacks.Latencies) map[string]float64 {
	out := map[string]float64{}
	for e := stacks.Event(0); e < stacks.NumEvents; e++ {
		if l[e] != base[e] {
			out[e.String()] = l[e]
		}
	}
	return out
}

// QuotedSpeed is one literature-quoted simulation speed from Figure 2a.
type QuotedSpeed struct {
	Method string
	MIPS   float64
}

// Fig2bGolden is the deterministic substrate of Figure 2: the quoted
// literature speeds of panel (a), the design-point series of panel (b), and
// the full RpStacks prediction sweep over the panel's latency grid. The
// host-measured MIPS rows and all wall-clock timings are deliberately
// excluded.
type Fig2bGolden struct {
	App            string
	MicroOps       int
	BaselineCycles float64
	BaselineCPI    float64
	QuotedSpeeds   []QuotedSpeed
	PointSeries    []int
	GridPoints     int
	PredSHA256     string
	PredPrefix     []float64
}

// Fig2bGoldenView computes the deterministic view of Figure 2 for one
// workload.
func (r *Runner) Fig2bGoldenView(name string) (*Fig2bGolden, error) {
	f2, err := r.Fig2(name)
	if err != nil {
		return nil, err
	}
	a, err := r.App(name)
	if err != nil {
		return nil, err
	}
	g := &Fig2bGolden{
		App:            name,
		MicroOps:       len(a.UOps),
		BaselineCycles: float64(a.Trace.Cycles),
		BaselineCPI:    a.Trace.CPI(),
		PointSeries:    f2.Points,
	}
	for _, row := range f2.Rows {
		if !row.Measured {
			g.QuotedSpeeds = append(g.QuotedSpeeds, QuotedSpeed{Method: row.Method, MIPS: row.MIPS})
		}
	}
	points := fig13Space(r.Cfg.Lat)
	g.GridPoints = len(points)
	rep := dse.ExploreRpStacks(a.Analysis, points)
	g.PredSHA256 = resultsDigest(rep.Results)
	g.PredPrefix = resultsPrefix(rep.Results, 8)
	return g, nil
}

// Fig6ScenarioGolden is one validation scenario's deterministic columns.
type Fig6ScenarioGolden struct {
	Name     string
	Knobs    map[string]float64 // latencies changed from the baseline
	TruthCPI float64
	RpCPI    float64
	Cp1CPI   float64
	FmtCPI   float64
}

// Fig6Golden is the deterministic substrate of Figure 6a/6b: the exploration
// space size, the target-CPI census, every validation scenario's four CPIs,
// and the three methods' baseline stack decompositions. Sweep timings and
// parallel speedups are excluded.
type Fig6Golden struct {
	App        string
	Space      int
	TargetCPI  float64
	MeetTarget int
	Scenarios  []Fig6ScenarioGolden
	RpStack    map[string]float64
	CP1Stack   map[string]float64
	FMTStack   map[string]float64
}

// Fig6GoldenView computes the deterministic view of Figure 6 for one
// workload.
func (r *Runner) Fig6GoldenView(name string) (*Fig6Golden, error) {
	f6, err := r.Fig6(name)
	if err != nil {
		return nil, err
	}
	g := &Fig6Golden{
		App:        f6.App,
		Space:      f6.Space,
		TargetCPI:  f6.TargetCPI,
		MeetTarget: f6.MeetTarget,
		RpStack:    stackCounts(&f6.Stacks.RpStacks),
		CP1Stack:   stackCounts(&f6.Stacks.CP1),
		FMTStack:   stackCounts(&f6.Stacks.FMT),
	}
	base := r.Cfg.Lat
	for i := range f6.Scenarios {
		s := &f6.Scenarios[i]
		g.Scenarios = append(g.Scenarios, Fig6ScenarioGolden{
			Name:     s.Name,
			Knobs:    latPoint(&base, &s.Lat),
			TruthCPI: s.TruthCPI,
			RpCPI:    s.RpCPI,
			Cp1CPI:   s.Cp1CPI,
			FmtCPI:   s.FmtCPI,
		})
	}
	return g, nil
}

// Fig13AppGolden is one workload's deterministic exploration substrate.
type Fig13AppGolden struct {
	App            string
	MicroOps       int
	BaselineCycles float64
	BaselineCPI    float64
	// RpStacks prediction sweep over the full grid.
	RpPredSHA256 string
	RpPredPrefix []float64
	// Graph-reconstruction cycle counts over the grid's first GraphPoints
	// points (the slice Fig13 times), quoted in full: the graph engine is
	// the figure's accuracy comparator, so its raw outputs are worth pinning.
	GraphPoints int
	GraphCycles []float64
}

// Fig13Golden is the deterministic substrate of Figure 13. The figure's own
// headline numbers (crossover point, speedup at 1000 points) are wall-clock
// ratios and therefore excluded; what is pinned is everything those ratios
// are computed over — the grid and both prediction engines' outputs on it.
type Fig13Golden struct {
	GridPoints int
	Apps       []Fig13AppGolden
}

// Fig13GoldenView computes the deterministic view of Figure 13 for the named
// workloads.
func (r *Runner) Fig13GoldenView(names []string) (*Fig13Golden, error) {
	points := fig13Space(r.Cfg.Lat)
	g := &Fig13Golden{GridPoints: len(points)}
	gpts := points
	if len(gpts) > 32 {
		gpts = gpts[:32]
	}
	for _, name := range names {
		a, err := r.App(name)
		if err != nil {
			return nil, err
		}
		rp := dse.ExploreRpStacks(a.Analysis, points)
		gr := dse.ExploreGraph(a.Graph, gpts)
		gc := make([]float64, len(gr.Results))
		for i := range gr.Results {
			gc[i] = gr.Results[i].Cycles
		}
		g.Apps = append(g.Apps, Fig13AppGolden{
			App:            name,
			MicroOps:       len(a.UOps),
			BaselineCycles: float64(a.Trace.Cycles),
			BaselineCPI:    a.Trace.CPI(),
			RpPredSHA256:   resultsDigest(rp.Results),
			RpPredPrefix:   resultsPrefix(rp.Results, 8),
			GraphPoints:    len(gpts),
			GraphCycles:    gc,
		})
	}
	return g, nil
}
