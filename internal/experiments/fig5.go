package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stacks"
)

// Fig5Result reproduces Figure 5: the stall-event stacks of the distinctive
// execution paths of one workload (per-segment representatives) and the
// selected RpStacks.
type Fig5Result struct {
	App      string
	Baseline stacks.Latencies
	// PathStacks are the representative stacks of the first segment,
	// longest first — the "execution paths" panel.
	PathStacks []stacks.Stack
	// SegmentLo/Hi locate the displayed segment.
	SegmentLo, SegmentHi int
	// Representative is the whole-trace aggregated stack at the baseline.
	Representative stacks.Stack
	MicroOps       int
	TotalStacks    int
}

// Fig5 extracts the path stacks of the named workload (the paper uses
// 416.gamess).
func (r *Runner) Fig5(name string) (*Fig5Result, error) {
	a, err := r.App(name)
	if err != nil {
		return nil, err
	}
	seg := a.Analysis.Segments[0]
	paths := append([]stacks.Stack(nil), seg.Stacks...)
	base := r.Cfg.Lat
	sort.Slice(paths, func(i, j int) bool {
		return paths[i].Total(&base) > paths[j].Total(&base)
	})
	return &Fig5Result{
		App:            name,
		Baseline:       base,
		PathStacks:     paths,
		SegmentLo:      seg.Lo,
		SegmentHi:      seg.Hi,
		Representative: a.Analysis.Representative(&base),
		MicroOps:       len(a.Trace.Records),
		TotalStacks:    a.Analysis.NumStacks(),
	}, nil
}

// String renders the stacks as per-path CPI decompositions.
func (f *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: representative stall-event stacks of %s\n", f.App)
	fmt.Fprintf(&b, "(segment µops [%d,%d); %d representative stacks across the trace)\n\n",
		f.SegmentLo, f.SegmentHi, f.TotalStacks)
	show := f.PathStacks
	if len(show) > 10 {
		show = show[:10]
	}
	segLen := float64(f.SegmentHi - f.SegmentLo)
	for i := range show {
		s := show[i]
		cpi := s.Total(&f.Baseline) / segLen
		fmt.Fprintf(&b, "  path %2d: CPI %.3f  %s\n", i+1, cpi, s.Format(&f.Baseline))
	}
	rep := f.Representative
	fmt.Fprintf(&b, "\nwhole-trace representative (baseline): CPI %.3f  %s\n",
		rep.Total(&f.Baseline)/float64(f.MicroOps), rep.Format(&f.Baseline))
	return b.String()
}
