// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) plus the motivating figures of Sections II and III,
// on top of the repository's simulator, dependence graph, RpStacks core and
// baselines. Each experiment is a function on a Runner; the Runner caches
// per-workload simulations, analyses and ground-truth re-simulations so that
// experiment suites and sensitivity sweeps share work.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/stacks"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Runner hosts shared state for experiment execution.
type Runner struct {
	// Cfg is the baseline design point (Table II unless overridden).
	Cfg *config.Config
	// MicroOps is the trace length per workload; the benchmarks use small
	// values, the CLI a larger default.
	MicroOps int
	// Warmup is the number of leading µops streamed functionally through
	// caches, TLBs and predictors before the measured region, so that the
	// trace reflects steady-state behaviour rather than compulsory misses.
	Warmup int
	// Seed feeds the deterministic workload generators.
	Seed int64
	// Opts are the RpStacks execution parameters.
	Opts core.Options
	// Parallelism is the sweep worker count the figure experiments hand to
	// the dse engines (1: serial). Sweep results are identical either way;
	// only the wall-clock changes.
	Parallelism int

	apps   map[string]*App
	truths map[string]float64
}

// NewRunner builds a Runner with the paper's defaults.
func NewRunner(microOps int) *Runner {
	return &Runner{
		Cfg:         config.Baseline(),
		MicroOps:    microOps,
		Warmup:      3 * microOps,
		Seed:        42,
		Opts:        core.DefaultOptions(),
		Parallelism: runtime.GOMAXPROCS(0),
		apps:        make(map[string]*App),
		truths:      make(map[string]float64),
	}
}

// App is the fully-prepared state of one workload: its µop stream, baseline
// trace, RpStacks analysis, whole-trace dependence graph and the two
// baseline analyzers, plus the wall-clock costs of producing them.
type App struct {
	Name      string
	CodeLines []uint64
	DataLines []uint64
	WarmUOps  []isa.MicroOp
	UOps      []isa.MicroOp
	Trace     *trace.Trace
	Analysis  *core.Analysis
	Graph     *depgraph.Graph
	CP1       *baseline.CP1
	FMT       *baseline.FMT

	SimTime     time.Duration
	AnalyzeTime time.Duration
}

// App prepares (or returns the cached) state of the named workload.
func (r *Runner) App(name string) (*App, error) {
	if a, ok := r.apps[name]; ok {
		return a, nil
	}
	prof, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	gen := workload.NewGenerator(prof, r.Seed)
	stream := gen.Take(r.Warmup + r.MicroOps)
	// Snap the warmup/measure split to a macro-op boundary.
	cut := r.Warmup
	for cut < len(stream) && !stream[cut].SoM {
		cut++
	}
	return r.prepare(name, gen.CodeLines(), gen.DataLines(), stream[:cut], stream[cut:])
}

// prepare runs the full pipeline — warm, simulate, analyze, graph,
// baselines — over an explicit µop stream and caches the result under name.
func (r *Runner) prepare(name string, codeLines, dataLines []uint64, warm, uops []isa.MicroOp) (*App, error) {
	a := &App{Name: name}
	a.CodeLines = codeLines
	a.DataLines = dataLines
	a.WarmUOps = warm
	a.UOps = uops

	start := time.Now()
	sim, err := cpu.New(r.Cfg)
	if err != nil {
		return nil, err
	}
	sim.WarmCode(codeLines)
	sim.WarmData(dataLines)
	sim.WarmUp(warm)
	if a.Trace, err = sim.Run(a.UOps); err != nil {
		return nil, fmt.Errorf("experiments: simulating %s: %w", name, err)
	}
	a.SimTime = time.Since(start)

	start = time.Now()
	if a.Analysis, err = core.Analyze(a.Trace, &r.Cfg.Structure, &r.Cfg.Lat, r.Opts); err != nil {
		return nil, fmt.Errorf("experiments: analyzing %s: %w", name, err)
	}
	a.AnalyzeTime = time.Since(start)

	if a.Graph, err = depgraph.Build(a.Trace, &r.Cfg.Structure, 0, len(a.Trace.Records)); err != nil {
		return nil, err
	}
	if a.CP1, err = baseline.NewCP1(a.Trace, &r.Cfg.Structure, &r.Cfg.Lat); err != nil {
		return nil, err
	}
	a.FMT = baseline.NewFMT(a.Trace, &r.Cfg.Lat)
	r.apps[name] = a
	return a, nil
}

// Truth re-simulates the workload under the given latency assignment and
// returns the measured cycle count — the ground truth every prediction is
// scored against. Results are cached per (workload, assignment).
func (r *Runner) Truth(a *App, l *stacks.Latencies) (float64, error) {
	key := fmt.Sprintf("%s|%v", a.Name, *l)
	if c, ok := r.truths[key]; ok {
		return c, nil
	}
	cfg := r.Cfg.Clone()
	cfg.Lat = *l
	sim, err := cpu.New(cfg)
	if err != nil {
		return 0, err
	}
	sim.WarmCode(a.CodeLines)
	sim.WarmData(a.DataLines)
	sim.WarmUp(a.WarmUOps)
	tr, err := sim.Run(a.UOps)
	if err != nil {
		return 0, fmt.Errorf("experiments: re-simulating %s: %w", a.Name, err)
	}
	c := float64(tr.Cycles)
	r.truths[key] = c
	return c, nil
}

// Bottlenecks returns the workload's top optimizable stall events by their
// share of the baseline RpStacks CPI stack (the paper identifies scenario
// targets this way, Figure 12).
func (a *App) Bottlenecks(base *stacks.Latencies, k int) []stacks.Event {
	rep := a.Analysis.Representative(base)
	pen := rep.Penalties(base)
	type ev struct {
		e stacks.Event
		c float64
	}
	var evs []ev
	for e := stacks.Event(0); e < stacks.NumEvents; e++ {
		if !e.Optimizable() || pen[e] == 0 {
			continue
		}
		evs = append(evs, ev{e, pen[e]})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].c > evs[j].c })
	if k > len(evs) {
		k = len(evs)
	}
	out := make([]stacks.Event, k)
	for i := 0; i < k; i++ {
		out[i] = evs[i].e
	}
	return out
}

// Suite lists the workloads experiments run over, in benchmark-number order.
func Suite() []string { return workload.Names() }
