package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/stacks"
)

// Fig12Row is one workload's baseline CPI stack.
type Fig12Row struct {
	App       string
	CPI       float64
	Penalties [stacks.NumEvents]float64 // per-µop cycles by event
}

// Fig12Result reproduces Figure 12: the bottleneck composition and baseline
// CPI of every application, from the RpStacks representative stack of the
// baseline configuration.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 computes the baseline CPI stacks of the whole suite.
func (r *Runner) Fig12() (*Fig12Result, error) {
	res := &Fig12Result{}
	for _, name := range Suite() {
		a, err := r.App(name)
		if err != nil {
			return nil, err
		}
		rep := a.Analysis.Representative(&r.Cfg.Lat)
		pen := rep.Penalties(&r.Cfg.Lat)
		n := float64(len(a.Trace.Records))
		for e := range pen {
			pen[e] /= n
		}
		res.Rows = append(res.Rows, Fig12Row{App: name, CPI: a.Trace.CPI(), Penalties: pen})
	}
	return res, nil
}

// String renders each application's stack, largest components first.
func (f *Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: bottlenecks and baseline CPIs (RpStacks decomposition, cycles/µop)\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "app\tCPI\ttop components")
	for _, row := range f.Rows {
		type comp struct {
			e stacks.Event
			c float64
		}
		var comps []comp
		for e := range row.Penalties {
			if row.Penalties[e] > 0 {
				comps = append(comps, comp{stacks.Event(e), row.Penalties[e]})
			}
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i].c > comps[j].c })
		if len(comps) > 6 {
			comps = comps[:6]
		}
		parts := make([]string, len(comps))
		for i, c := range comps {
			parts[i] = fmt.Sprintf("%s=%.2f", c.e, c.c)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%s\n", row.App, row.CPI, strings.Join(parts, " "))
	}
	w.Flush()
	return b.String()
}
