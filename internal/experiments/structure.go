package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/stacks"
	"repro/internal/stats"
)

// PredictorRow is one branch-predictor design's outcome.
type PredictorRow struct {
	Predictor   string
	Mispredicts uint64
	CPI         float64
	BranchShare float64 // Branch component of the RpStacks decomposition (cycles/µop)
	// RpErr is the RpStacks prediction error when the misprediction
	// penalty (front-end refill) is halved under this predictor's own
	// stacks — each structure needs its own stack set (Section IV-D).
	RpErr float64
}

// PredictorStudyResult reproduces the paper's Section IV-D point: the branch
// predictor is a structure-domain choice, so each predictor design gets its
// own dependence graph and RpStacks; within each structure, the
// misprediction *penalty* remains a latency knob the stacks predict.
type PredictorStudyResult struct {
	App  string
	Rows []PredictorRow
}

// PredictorStudy runs one workload across predictor structures. Each
// structure is simulated and analyzed independently; the per-structure
// stacks then predict a halved redirect penalty.
func (r *Runner) PredictorStudy(app string) (*PredictorStudyResult, error) {
	res := &PredictorStudyResult{App: app}
	for _, pred := range []string{"taken", "bimodal", "gshare", "tournament"} {
		sub := NewRunner(r.MicroOps)
		sub.Warmup = r.Warmup
		sub.Seed = r.Seed
		sub.Opts = r.Opts
		sub.Cfg = r.Cfg.Clone()
		sub.Cfg.Structure.Predictor = pred
		a, err := sub.App(app)
		if err != nil {
			return nil, err
		}
		rep := a.Analysis.Representative(&sub.Cfg.Lat)
		pen := rep.Penalties(&sub.Cfg.Lat)
		l := sub.Cfg.Lat.Scale(stacks.Branch, 0.5)
		truth, err := sub.Truth(a, &l)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PredictorRow{
			Predictor:   pred,
			Mispredicts: a.Trace.Mispredicts,
			CPI:         a.Trace.CPI(),
			BranchShare: pen[stacks.Branch] / float64(len(a.Trace.Records)),
			RpErr:       stats.AbsPctErr(a.Analysis.Predict(&l), truth),
		})
	}
	return res, nil
}

// String renders the study.
func (p *PredictorStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV-D: branch predictor structure study (%s)\n", p.App)
	fmt.Fprintf(&b, "(one dependence graph + RpStacks set per predictor design)\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "predictor\tmispredicts\tCPI\tBranch cyc/µop\tRp err% (penalty halved)")
	for _, row := range p.Rows {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.2f\n",
			row.Predictor, row.Mispredicts, row.CPI, row.BranchShare, row.RpErr)
	}
	w.Flush()
	fmt.Fprintf(&b, "\nBetter predictors shrink both the misprediction count and the Branch\n")
	fmt.Fprintf(&b, "component; within each structure the stacks still predict penalty changes.\n")
	return b.String()
}
