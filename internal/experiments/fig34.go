package experiments

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/stacks"
	"repro/internal/stats"
)

// CraftedOverlap builds the paper's motivating pattern (Figures 1a, 3 and
// 4): every iteration issues an independent memory-missing load alongside a
// floating-point divide chain of nearly the same length, so two
// near-critical paths coexist and overlap. n is the iteration count.
func CraftedOverlap(n int) []isa.MicroOp {
	var uops []isa.MicroOp
	seq := uint64(0)
	mseq := uint64(0)
	pc := uint64(0x400000)
	emit := func(u isa.MicroOp) {
		u.Seq = seq
		u.MacroSeq = mseq
		u.PC = pc
		u.SoM, u.EoM = true, true
		seq++
		mseq++
		uops = append(uops, u)
	}
	// Two serial chains share the pipeline: a pointer-chase load chain
	// (every address depends on the previous load; every access misses to
	// memory) and a floating-point divide chain (5 x 24 = 120 cycles per
	// iteration at the baseline, just under one serial miss). Both chains
	// are dependency-serial, so neither is throttled by functional-unit
	// structural limits — they are genuinely two near-critical *paths*.
	state := uint64(0x9E3779B97F4A7C15)
	const region = uint64(64) << 20
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		addr := (uint64(3) << 30) + (state>>17%(region/64))*64
		emit(isa.MicroOp{Class: isa.Load, Dest: 2, Src1: 2, Src2: isa.RegNone, Addr: addr})
		for j := 0; j < 5; j++ {
			emit(isa.MicroOp{Class: isa.FpDiv, Dest: isa.NumIntRegs, Src1: isa.NumIntRegs,
				Src2: isa.RegNone})
		}
	}
	return uops
}

// Fig3Result reproduces Figure 3's point: the pipeline-stall analysis (FMT)
// charges overlapped penalties to a single event and cannot see the
// fine-grained FP chain at all, while RpStacks keeps both decompositions.
type Fig3Result struct {
	FmtStack stacks.Stack
	// RpStacks holds the representative path stacks of the first segment:
	// the baseline winner plus the preserved alternative paths (including
	// the FP chain hidden under the misses).
	RpStacks []stacks.Stack
	Baseline stacks.Latencies
	MicroOps int
}

// HasHiddenPath reports whether any retained path stack carries the event
// kind pipeline-stall analysis is blind to.
func (f *Fig3Result) HasHiddenPath(e stacks.Event) bool {
	for i := range f.RpStacks {
		if f.RpStacks[i].Counts[e] > 0 {
			return true
		}
	}
	return false
}

// Fig3 runs the crafted overlap workload and contrasts the decompositions.
func (r *Runner) Fig3() (*Fig3Result, error) {
	a, err := r.crafted()
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		FmtStack: a.FMT.Stack(),
		RpStacks: a.Analysis.Segments[0].Stacks,
		Baseline: r.Cfg.Lat,
		MicroOps: len(a.Trace.Records),
	}, nil
}

// String renders the decompositions side by side.
func (f *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: overlapped-event accounting (crafted load-miss ∥ FP-divide chain)\n\n")
	fmt.Fprintf(&b, "FMT stack:          %s\n", f.FmtStack.Format(&f.Baseline))
	show := f.RpStacks
	if len(show) > 4 {
		show = show[:4]
	}
	for i := range show {
		fmt.Fprintf(&b, "RpStacks path %d:    %s\n", i+1, show[i].Format(&f.Baseline))
	}
	fdiv := f.FmtStack.Counts[stacks.FpDiv] * f.Baseline[stacks.FpDiv]
	fmt.Fprintf(&b, "\nFMT charges %.0f cycles to the FP divides hidden under the misses —\n", fdiv)
	fmt.Fprintf(&b, "pipeline-stall accounting is blind to overlapped fine-grained events,\n")
	fmt.Fprintf(&b, "while RpStacks preserves the FP-divide path among its representatives.\n")
	return b.String()
}

// Fig4Result reproduces Figure 4b: when a latency change makes the
// secondary path critical, the ex-critical-path prediction (CP1) goes
// wrong while RpStacks — holding both paths — stays accurate.
type Fig4Result struct {
	Scenario string
	TruthCPI float64
	RpCPI    float64
	Cp1CPI   float64
	RpErr    float64
	Cp1Err   float64
}

// Fig4 optimizes the memory latency of the crafted workload so the FP chain
// becomes the critical path.
func (r *Runner) Fig4() (*Fig4Result, error) {
	a, err := r.crafted()
	if err != nil {
		return nil, err
	}
	l := r.Cfg.Lat.Scale(stacks.MemD, 0.5) // 133 -> 67: FP chain now dominates
	truth, err := r.Truth(a, &l)
	if err != nil {
		return nil, err
	}
	n := float64(len(a.Trace.Records))
	res := &Fig4Result{
		Scenario: "MemD halved",
		TruthCPI: truth / n,
		RpCPI:    a.Analysis.Predict(&l) / n,
		Cp1CPI:   a.CP1.Predict(&l) / n,
	}
	res.RpErr = stats.AbsPctErr(res.RpCPI, res.TruthCPI)
	res.Cp1Err = stats.AbsPctErr(res.Cp1CPI, res.TruthCPI)
	return res, nil
}

// String renders the misprediction contrast.
func (f *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: critical-path switch (%s)\n\n", f.Scenario)
	fmt.Fprintf(&b, "truth CPI %.3f | RpStacks %.3f (err %.1f%%) | CP1 %.3f (err %.1f%%)\n",
		f.TruthCPI, f.RpCPI, f.RpErr, f.Cp1CPI, f.Cp1Err)
	fmt.Fprintf(&b, "\nCP1 follows the ex-critical memory path; RpStacks kept the FP path alive.\n")
	return b.String()
}

// crafted prepares the synthetic overlap workload through the same caching
// pipeline as the suite workloads.
func (r *Runner) crafted() (*App, error) {
	const name = "crafted.overlap"
	if a, ok := r.apps[name]; ok {
		return a, nil
	}
	n := r.MicroOps / 6
	if n < 16 {
		n = 16
	}
	if n > 400 {
		n = 400
	}
	// The crafted chains never warm (every miss is intentional).
	a, err := r.prepare(name, nil, nil, nil, CraftedOverlap(n))
	if err != nil {
		return nil, err
	}
	return a, nil
}
