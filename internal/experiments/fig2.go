package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dse"
)

// Literature simulation speeds in MIPS used by the paper's Figure 2a ("we
// use the best-reported numbers from the literatures"). Native speed is a
// representative 2014-era core; the others are the published throughputs of
// the cited systems.
const (
	SpeedNativeMIPS   = 2000.0
	SpeedMARSSx86MIPS = 0.2  // Patel et al., cycle-accurate full-system
	SpeedGraphiteMIPS = 2.0  // Miller et al., parallel one-IPC
	SpeedSniperMIPS   = 2.2  // Carlson et al., parallel interval model
	SpeedFASTMIPS     = 10.0 // Chiou et al., FPGA-accelerated
)

// Fig2Row is one method's single-simulation speed.
type Fig2Row struct {
	Method   string
	MIPS     float64
	Measured bool // measured on this host rather than quoted
}

// Fig2Result reproduces Figure 2: (a) single-simulation speed per method,
// and (b) total exploration time versus the number of design points, where
// acceleration methods diverge and the single-simulation RpStacks flattens.
type Fig2Result struct {
	Rows []Fig2Row
	// Host-measured costs for the scaling series.
	SimPerPoint time.Duration
	Setup       time.Duration
	RpPerPoint  time.Duration
	Points      []int
	// Sharded-sweep measurement: wall-clock of the same prediction sweep
	// run serially and with SweepWorkers workers, and the resulting speedup.
	SweepWorkers int
	SerialSweep  time.Duration
	ParSweep     time.Duration
	ParSpeedup   float64
}

// Fig2 measures this host's simulator and RpStacks throughput on the given
// workload and combines them with the quoted literature speeds.
func (r *Runner) Fig2(name string) (*Fig2Result, error) {
	a, err := r.App(name)
	if err != nil {
		return nil, err
	}
	n := float64(len(a.UOps))
	simMIPS := n / a.SimTime.Seconds() / 1e6
	rpMIPS := n / (a.SimTime + a.AnalyzeTime).Seconds() / 1e6

	points := fig13Space(r.Cfg.Lat)
	// The per-point cost model is measured serially (Figure 2b plots the
	// single-core method cost); the sharded sweep is timed against it.
	serial, _ := dse.ExploreRpStacksOpts(a.Analysis, points, dse.ExploreOptions{})
	perPred := serial.PerPoint
	par, _ := dse.ExploreRpStacksOpts(a.Analysis, points, dse.ExploreOptions{Parallelism: r.Parallelism})
	speedup := 0.0
	if par.Wall > 0 {
		speedup = float64(serial.Wall) / float64(par.Wall)
	}

	return &Fig2Result{
		Rows: []Fig2Row{
			{Method: "native", MIPS: SpeedNativeMIPS},
			{Method: "MARSSx86 (quoted)", MIPS: SpeedMARSSx86MIPS},
			{Method: "Graphite (quoted)", MIPS: SpeedGraphiteMIPS},
			{Method: "Sniper (quoted)", MIPS: SpeedSniperMIPS},
			{Method: "FAST (quoted)", MIPS: SpeedFASTMIPS},
			{Method: "this simulator", MIPS: simMIPS, Measured: true},
			{Method: "RpStacks (collect+analyze)", MIPS: rpMIPS, Measured: true},
		},
		SimPerPoint:  a.SimTime,
		Setup:        a.SimTime + a.AnalyzeTime,
		RpPerPoint:   perPred,
		Points:       []int{1, 10, 100, 1000},
		SweepWorkers: len(par.Workers),
		SerialSweep:  serial.Wall,
		ParSweep:     par.Wall,
		ParSpeedup:   speedup,
	}, nil
}

// String renders both panels.
func (f *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2a: simulation speed (single simulation)\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "method\tMIPS\tsource")
	for _, row := range f.Rows {
		src := "literature"
		if row.Measured {
			src = "measured"
		}
		fmt.Fprintf(w, "%s\t%.3f\t%s\n", row.Method, row.MIPS, src)
	}
	w.Flush()

	fmt.Fprintf(&b, "\nFigure 2b: total exploration time vs design points (this host)\n\n")
	w = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "points\tper-point simulation\tRpStacks (one sim + analysis)")
	for _, n := range f.Points {
		sim := time.Duration(n) * f.SimPerPoint
		rp := f.Setup + time.Duration(n)*f.RpPerPoint
		fmt.Fprintf(w, "%d\t%v\t%v\n", n, sim.Round(time.Millisecond), rp.Round(time.Millisecond))
	}
	w.Flush()
	fmt.Fprintf(&b, "\nsharded prediction sweep: serial %v, %d workers %v (%.2fx)\n",
		f.SerialSweep.Round(time.Microsecond), f.SweepWorkers,
		f.ParSweep.Round(time.Microsecond), f.ParSpeedup)
	return b.String()
}

// Speedup returns simulation/RpStacks exploration time at n points.
func (f *Fig2Result) Speedup(n int) float64 {
	rp := f.Setup + time.Duration(n)*f.RpPerPoint
	if rp <= 0 {
		return 0
	}
	return float64(time.Duration(n)*f.SimPerPoint) / float64(rp)
}
