package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/stacks"
	"repro/internal/stats"
)

// MethodErr is one prediction method's error summary over the optimization
// scenarios of a workload.
type MethodErr struct {
	Mean, Max float64
}

// Fig11Row is one workload's prediction-accuracy comparison.
type Fig11Row struct {
	App         string
	BaselineCPI float64
	Bottlenecks []stacks.Event
	RpStacks    MethodErr
	CP1         MethodErr
	FMT         MethodErr
}

// Fig11Result reproduces Figure 11: prediction error of RpStacks, single
// critical path (CP1) and pipeline-stall analysis (FMT) when the latencies
// of up to two major bottleneck events are reduced.
type Fig11Result struct {
	Label string
	Scale float64
	Rows  []Fig11Row
}

// Scenarios returns the latency configurations of the paper's optimization
// study for a workload: each of the top-two bottleneck events scaled alone,
// and both together.
func (r *Runner) Scenarios(a *App, scale float64) []stacks.Latencies {
	bots := a.Bottlenecks(&r.Cfg.Lat, 2)
	var out []stacks.Latencies
	for _, e := range bots {
		out = append(out, r.Cfg.Lat.Scale(e, scale))
	}
	if len(bots) == 2 {
		out = append(out, r.Cfg.Lat.Scale(bots[0], scale).Scale(bots[1], scale))
	}
	return out
}

// Fig11 runs the study at the given latency scale factor: 0.5 reproduces
// Figure 11a ("reduced to half"), 0.15 reproduces Figure 11b ("reduced to
// 10~25%", integer-rounded per event).
func (r *Runner) Fig11(label string, scale float64) (*Fig11Result, error) {
	res := &Fig11Result{Label: label, Scale: scale}
	for _, name := range Suite() {
		a, err := r.App(name)
		if err != nil {
			return nil, err
		}
		row := Fig11Row{
			App:         name,
			BaselineCPI: a.Trace.CPI(),
			Bottlenecks: a.Bottlenecks(&r.Cfg.Lat, 2),
		}
		var rp, cp, fm []float64
		for _, l := range r.Scenarios(a, scale) {
			l := l
			truth, err := r.Truth(a, &l)
			if err != nil {
				return nil, err
			}
			rp = append(rp, stats.AbsPctErr(a.Analysis.Predict(&l), truth))
			cp = append(cp, stats.AbsPctErr(a.CP1.Predict(&l), truth))
			fm = append(fm, stats.AbsPctErr(a.FMT.Predict(&l), truth))
		}
		row.RpStacks = MethodErr{Mean: stats.Mean(rp), Max: stats.Max(rp)}
		row.CP1 = MethodErr{Mean: stats.Mean(cp), Max: stats.Max(cp)}
		row.FMT = MethodErr{Mean: stats.Mean(fm), Max: stats.Max(fm)}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Means returns the suite-wide mean error per method.
func (f *Fig11Result) Means() (rp, cp, fm float64) {
	var a, b, c []float64
	for _, row := range f.Rows {
		a = append(a, row.RpStacks.Mean)
		b = append(b, row.CP1.Mean)
		c = append(c, row.FMT.Mean)
	}
	return stats.Mean(a), stats.Mean(b), stats.Mean(c)
}

// String renders the per-app error bars of the figure.
func (f *Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11%s: CPI prediction error, bottleneck latencies scaled by %.2f\n\n", f.Label, f.Scale)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "app\tbaseCPI\tbottlenecks\tRpStacks mean/max%\tCP1 mean/max%\tFMT mean/max%")
	for _, row := range f.Rows {
		bots := make([]string, len(row.Bottlenecks))
		for i, e := range row.Bottlenecks {
			bots[i] = e.String()
		}
		fmt.Fprintf(w, "%s\t%.2f\t%s\t%.2f/%.2f\t%.2f/%.2f\t%.2f/%.2f\n",
			row.App, row.BaselineCPI, strings.Join(bots, "+"),
			row.RpStacks.Mean, row.RpStacks.Max,
			row.CP1.Mean, row.CP1.Max,
			row.FMT.Mean, row.FMT.Max)
	}
	w.Flush()
	rp, cp, fm := f.Means()
	fmt.Fprintf(&b, "\nsuite means: RpStacks %.2f%%  CP1 %.2f%%  FMT %.2f%%\n", rp, cp, fm)
	return b.String()
}
