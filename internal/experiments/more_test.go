package experiments

import (
	"strings"
	"testing"
)

// TestFig1HiddenPenalty checks the quantitative Figure 1a demonstration:
// the actual saving from optimizing the exposed bottleneck is far below the
// apparent exposure, and the interaction cost is positive (parallel).
func TestFig1HiddenPenalty(t *testing.T) {
	r := testRunner()
	f, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	if f.ActualSave >= f.ApparentSave {
		t.Fatalf("no hidden penalty: actual %.0f >= apparent %.0f", f.ActualSave, f.ApparentSave)
	}
	if f.Interaction <= 0 {
		t.Fatalf("overlapping chains must have positive interaction cost, got %d", f.Interaction)
	}
}

// TestSec4DPredictorStudy checks the structure-domain workflow: learned
// predictors beat static always-taken on a branchy workload, and the
// per-structure stacks keep predicting penalty changes accurately.
func TestSec4DPredictorStudy(t *testing.T) {
	r := testRunner()
	p, err := r.PredictorStudy("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", p)
	byName := map[string]PredictorRow{}
	for _, row := range p.Rows {
		byName[row.Predictor] = row
		if row.RpErr > 5 {
			t.Errorf("%s: RpStacks penalty prediction error %.2f%% too large", row.Predictor, row.RpErr)
		}
	}
	if byName["tournament"].Mispredicts >= byName["taken"].Mispredicts {
		t.Error("the tournament predictor should beat always-taken on sjeng")
	}
}

// TestFig5Shape checks the representative-stack panel renders sane content.
func TestFig5Shape(t *testing.T) {
	r := testRunner()
	f, err := r.Fig5("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PathStacks) == 0 || f.TotalStacks < len(f.PathStacks) {
		t.Fatal("no path stacks extracted")
	}
	// Stacks are sorted longest first.
	for i := 1; i < len(f.PathStacks); i++ {
		if f.PathStacks[i].Total(&f.Baseline) > f.PathStacks[i-1].Total(&f.Baseline) {
			t.Fatal("path stacks not sorted")
		}
	}
	if !strings.Contains(f.String(), "CPI") {
		t.Fatal("rendering lost the CPI lines")
	}
}

// TestFig6ScenarioAccuracy: in the gamess exploration scenario, RpStacks'
// worst error stays below FMT's worst error.
func TestFig6ScenarioAccuracy(t *testing.T) {
	r := testRunner()
	f, err := r.Fig6("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	if f.Space < 500 {
		t.Fatalf("scenario space only %d points", f.Space)
	}
	var rpWorst, fmWorst float64
	for i := range f.Scenarios {
		rp, _, fm := f.Scenarios[i].Err()
		if rp > rpWorst {
			rpWorst = rp
		}
		if fm > fmWorst {
			fmWorst = fm
		}
	}
	if rpWorst >= fmWorst {
		t.Errorf("RpStacks worst %.2f%% not below FMT worst %.2f%%", rpWorst, fmWorst)
	}
}

// TestFig13Shape checks the exploration-overhead measurements are coherent.
func TestFig13Shape(t *testing.T) {
	r := testRunner()
	f, err := r.Fig13([]string{"416.gamess"})
	if err != nil {
		t.Fatal(err)
	}
	row := f.Rows[0]
	if row.RpPoint <= 0 || row.SimPoint <= 0 || row.Setup < row.SimPoint {
		t.Fatalf("incoherent timings: %+v", row)
	}
	if row.RpPoint >= row.SimPoint {
		t.Fatal("an RpStacks prediction must be cheaper than a simulation")
	}
	if row.Crossover <= 0 {
		t.Fatal("crossover must exist: predictions are cheaper per point")
	}
	if row.Speedup1k <= 1 {
		t.Fatalf("speedup at 1000 points %.2f must exceed 1", row.Speedup1k)
	}
}

// TestFig2Measured checks that measured host speeds appear alongside the
// quoted literature numbers.
func TestFig2Measured(t *testing.T) {
	r := testRunner()
	f, err := r.Fig2("456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, row := range f.Rows {
		if row.Measured {
			measured++
			if row.MIPS <= 0 {
				t.Fatalf("%s: non-positive measured speed", row.Method)
			}
		}
	}
	if measured != 2 {
		t.Fatalf("%d measured rows, want 2", measured)
	}
	if f.Speedup(1000) <= f.Speedup(10) {
		t.Fatal("speedup must grow with the design-point count")
	}
}

// TestFig6cCoverage: within the same budget RpStacks covers vastly more
// latency points than per-point simulation.
func TestFig6cCoverage(t *testing.T) {
	r := testRunner()
	f, err := r.Fig6c("416.gamess", 250)
	if err != nil {
		t.Fatal(err)
	}
	simPts := f.Rows[0].Points
	rpPts := f.Rows[len(f.Rows)-1].Points
	if rpPts <= simPts {
		t.Fatalf("RpStacks covered %d points vs simulation's %d", rpPts, simPts)
	}
}
