package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dse"
	"repro/internal/stacks"
	"repro/internal/stats"
)

// Fig6Scenario is one named latency-optimization design point with the
// three methods' predictions and the re-simulated truth.
type Fig6Scenario struct {
	Name     string
	Lat      stacks.Latencies
	TruthCPI float64
	RpCPI    float64
	Cp1CPI   float64
	FmtCPI   float64
}

// Err returns the three methods' CPI error in percent.
func (s *Fig6Scenario) Err() (rp, cp, fm float64) {
	return stats.AbsPctErr(s.RpCPI, s.TruthCPI),
		stats.AbsPctErr(s.Cp1CPI, s.TruthCPI),
		stats.AbsPctErr(s.FmtCPI, s.TruthCPI)
}

// Fig6Result reproduces Figure 6a/6b: the exploration scenario of one
// workload — sweep a latency space around the bottlenecks with RpStacks,
// count the design points meeting the target CPI, and validate the
// predictions of RpStacks, CP1 and FMT on named optimization scenarios.
type Fig6Result struct {
	App        string
	Space      int // latency points covered by the single analysis
	TargetCPI  float64
	MeetTarget int
	SweepTime  time.Duration // sharded sweep wall-clock
	SerialTime time.Duration // the same sweep, one worker
	Workers    int
	ParSpeedup float64 // SerialTime / SweepTime
	Scenarios  []Fig6Scenario
	Stacks     struct {
		RpStacks stacks.Stack // baseline decomposition per method
		CP1      stacks.Stack
		FMT      stacks.Stack
	}
}

// fig6Space builds the exploration space over the workload's top bottleneck
// events: every integer latency from 1 to the baseline for cheap events,
// and a coarse grid for memory-like events — over 2500 points, as in the
// paper's scenario.
func fig6Space(base stacks.Latencies, bots []stacks.Event) dse.Space {
	var sp dse.Space
	for _, e := range bots {
		b := base[e]
		var vals []float64
		switch {
		case b <= 8:
			for v := 1.0; v <= b; v++ {
				vals = append(vals, v)
			}
		case b <= 32:
			for v := b / 4; v <= b; v += b / 8 {
				vals = append(vals, float64(int(v)))
			}
		default:
			for _, f := range []float64{0.25, 0.5, 0.75, 1} {
				vals = append(vals, float64(int(b*f)))
			}
		}
		sp.Axes = append(sp.Axes, dse.Axis{Event: e, Values: vals})
	}
	return sp
}

// Fig6 runs the exploration scenario for one workload. The paper's panels
// use 416.gamess (6a) and 437.leslie3d (6b).
func (r *Runner) Fig6(name string) (*Fig6Result, error) {
	a, err := r.App(name)
	if err != nil {
		return nil, err
	}
	base := r.Cfg.Lat
	bots := a.Bottlenecks(&base, 4)
	sp := fig6Space(base, bots)
	points := sp.Enumerate(base)

	res := &Fig6Result{App: name, Space: len(points)}
	res.Stacks.RpStacks = a.Analysis.Representative(&base)
	_, cpStack := a.Graph.CriticalPath(&base)
	res.Stacks.CP1 = cpStack
	res.Stacks.FMT = a.FMT.Stack()

	// Sweep the whole space with RpStacks — sharded over the runner's
	// worker count, with a serial reference sweep for the speedup column —
	// and count points meeting the design goal (here: 10% CPI improvement
	// over baseline).
	res.TargetCPI = a.Trace.CPI() * 0.9
	serial, _ := dse.ExploreRpStacksOpts(a.Analysis, points, dse.ExploreOptions{})
	rep, _ := dse.ExploreRpStacksOpts(a.Analysis, points, dse.ExploreOptions{Parallelism: r.Parallelism})
	res.SweepTime = rep.Wall
	res.SerialTime = serial.Wall
	res.Workers = len(rep.Workers)
	if rep.Wall > 0 {
		res.ParSpeedup = float64(serial.Wall) / float64(rep.Wall)
	}
	n := float64(len(a.Trace.Records))
	for _, p := range rep.Results {
		if p.Cycles/n <= res.TargetCPI {
			res.MeetTarget++
		}
	}

	// Validation scenarios: halve each top bottleneck alone, pairs of the
	// top two, and an aggressive joint optimization.
	type sc struct {
		name  string
		scale map[stacks.Event]float64
	}
	var scs []sc
	for _, e := range bots[:min(2, len(bots))] {
		scs = append(scs, sc{fmt.Sprintf("%s/2", e), map[stacks.Event]float64{e: 0.5}})
		scs = append(scs, sc{fmt.Sprintf("%s/4", e), map[stacks.Event]float64{e: 0.25}})
	}
	if len(bots) >= 2 {
		scs = append(scs, sc{fmt.Sprintf("%s/2+%s/2", bots[0], bots[1]),
			map[stacks.Event]float64{bots[0]: 0.5, bots[1]: 0.5}})
		scs = append(scs, sc{fmt.Sprintf("%s/4+%s/4", bots[0], bots[1]),
			map[stacks.Event]float64{bots[0]: 0.25, bots[1]: 0.25}})
	}
	for _, s := range scs {
		l := base
		for e, f := range s.scale {
			l = l.Scale(e, f)
		}
		truth, err := r.Truth(a, &l)
		if err != nil {
			return nil, err
		}
		res.Scenarios = append(res.Scenarios, Fig6Scenario{
			Name:     s.name,
			Lat:      l,
			TruthCPI: truth / n,
			RpCPI:    a.Analysis.Predict(&l) / n,
			Cp1CPI:   a.CP1.Predict(&l) / n,
			FmtCPI:   a.FMT.Predict(&l) / n,
		})
	}
	return res, nil
}

// String renders the panel.
func (f *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 scenario: %s\n\n", f.App)
	fmt.Fprintf(&b, "single analysis covered %d latency points in %v (%d workers, %.2fx vs serial); %d meet target CPI %.3f\n\n",
		f.Space, f.SweepTime.Round(time.Millisecond), f.Workers, f.ParSpeedup, f.MeetTarget, f.TargetCPI)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\ttruth CPI\tRpStacks\tCP1\tFMT\terr Rp/CP1/FMT %")
	for i := range f.Scenarios {
		s := &f.Scenarios[i]
		rp, cp, fm := s.Err()
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f/%.1f/%.1f\n",
			s.Name, s.TruthCPI, s.RpCPI, s.Cp1CPI, s.FmtCPI, rp, cp, fm)
	}
	w.Flush()
	return b.String()
}

// Fig6cRow is one exploration strategy's coverage within a fixed budget.
type Fig6cRow struct {
	Strategy string
	Points   int
	Note     string
}

// Fig6cResult reproduces Figure 6c: how many design points each strategy
// covers within the budget it takes the simulator to explore a small
// insight-driven set.
type Fig6cResult struct {
	App    string
	Budget time.Duration
	Rows   []Fig6cRow
}

// Fig6c compares exploration coverage under a fixed time budget.
func (r *Runner) Fig6c(name string, budgetPoints int) (*Fig6cResult, error) {
	a, err := r.App(name)
	if err != nil {
		return nil, err
	}
	budget := time.Duration(budgetPoints) * a.SimTime
	res := &Fig6cResult{App: name, Budget: budget}

	res.Rows = append(res.Rows, Fig6cRow{
		Strategy: "exhaustive simulation",
		Points:   budgetPoints,
		Note:     "every point re-simulated",
	})
	res.Rows = append(res.Rows, Fig6cRow{
		Strategy: "insight-driven simulation",
		Points:   budgetPoints,
		Note:     "same cost per point; heuristic selection may miss optima",
	})
	// RpStacks: one simulation + analysis, then near-free predictions. The
	// sharded sweep's effective per-point rate (wall / points) is what the
	// budget buys on this host; the engine records its own setup cost.
	points := fig13Space(r.Cfg.Lat)
	rp, _ := dse.ExploreRpStacksOpts(a.Analysis, points,
		dse.ExploreOptions{Parallelism: r.Parallelism, Setup: a.SimTime + a.AnalyzeTime})
	covered := 0
	if budget > rp.Setup && rp.PerPoint > 0 {
		covered = int((budget - rp.Setup) / rp.PerPoint)
	}
	res.Rows = append(res.Rows, Fig6cRow{
		Strategy: "RpStacks",
		Points:   covered,
		Note:     "one simulation covers all latency points of the structure",
	})
	return res, nil
}

// String renders the coverage table.
func (f *Fig6cResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6c: exploration coverage within %v (%s)\n\n", f.Budget.Round(time.Millisecond), f.App)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tlatency points covered\tnote")
	for _, row := range f.Rows {
		fmt.Fprintf(w, "%s\t%d\t%s\n", row.Strategy, row.Points, row.Note)
	}
	w.Flush()
	return b.String()
}
