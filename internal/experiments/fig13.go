package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dse"
	"repro/internal/stacks"
)

// Fig13Row is one workload's measured exploration costs.
type Fig13Row struct {
	App        string
	SimPoint   time.Duration // one re-simulation (one design point)
	Setup      time.Duration // RpStacks one-time cost: simulate + analyze
	RpPoint    time.Duration // one RpStacks prediction (serial)
	GraphPoint time.Duration // one graph-reconstruction longest path (serial)
	Crossover  int           // points beyond which RpStacks beats simulation
	Speedup1k  float64       // simulation time / RpStacks time at 1000 points
	Workers    int           // sweep workers of the sharded runs
	RpPar      float64       // sharded RpStacks sweep speedup vs serial
	GraphPar   float64       // sharded graph sweep speedup vs serial
}

// Fig13Result reproduces Figure 13 (and the headline 26x speedup claim):
// design space exploration cost versus the number of latency design points,
// for per-point simulation versus single-analysis RpStacks.
type Fig13Result struct {
	Rows   []Fig13Row
	Points []int
}

// fig13Space is a representative latency space used to time the per-point
// prediction loop.
func fig13Space(base stacks.Latencies) []stacks.Latencies {
	sp := dse.Space{Axes: []dse.Axis{
		{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
		{Event: stacks.L2D, Values: []float64{6, 9, 12, 15, 18}},
		{Event: stacks.FpAdd, Values: []float64{2, 4, 6, 8}},
		{Event: stacks.FpMul, Values: []float64{2, 4, 6, 8}},
		{Event: stacks.MemD, Values: []float64{66, 100, 133}},
	}}
	return sp.Enumerate(base)
}

// Fig13 measures exploration costs for the named workloads (nil for the
// whole suite).
func (r *Runner) Fig13(names []string) (*Fig13Result, error) {
	if names == nil {
		names = Suite()
	}
	res := &Fig13Result{Points: []int{1, 10, 38, 100, 1000}}
	points := fig13Space(r.Cfg.Lat)
	for _, name := range names {
		a, err := r.App(name)
		if err != nil {
			return nil, err
		}
		row := Fig13Row{App: name, SimPoint: a.SimTime}

		// The engines record their own setup cost (simulate + analyze for
		// RpStacks; the graph rides on the same simulation) in the Report,
		// so the crossover math below uses the reports directly.
		setup := dse.ExploreOptions{Setup: a.SimTime + a.AnalyzeTime}
		rp, _ := dse.ExploreRpStacksOpts(a.Analysis, points, setup)
		row.Setup = rp.Setup
		row.RpPoint = rp.PerPoint
		// Time the graph reconstruction on a slice of the space (it is two
		// to three orders slower per point than RpStacks).
		gpts := points
		if len(gpts) > 32 {
			gpts = gpts[:32]
		}
		gr := dse.ExploreGraph(a.Graph, gpts)
		row.GraphPoint = gr.PerPoint

		// Sharded sweeps of the same point lists: identical Results, the
		// wall-clock divided across the runner's workers.
		par := dse.ExploreOptions{Parallelism: r.Parallelism}
		rpPar, _ := dse.ExploreRpStacksOpts(a.Analysis, points, par)
		grPar, _ := dse.ExploreGraphOpts(a.Graph, gpts, par)
		row.Workers = len(rpPar.Workers)
		if rpPar.Wall > 0 {
			row.RpPar = float64(rp.Wall) / float64(rpPar.Wall)
		}
		if grPar.Wall > 0 {
			row.GraphPar = float64(gr.Wall) / float64(grPar.Wall)
		}

		simRep := &dse.Report{PerPoint: row.SimPoint}
		row.Crossover = dse.Crossover(rp, simRep, 1_000_000)
		if t := rp.Total(1000); t > 0 {
			row.Speedup1k = float64(simRep.Total(1000)) / float64(t)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// MeanCrossover returns the average crossover point and the average speedup
// at 1000 design points across the measured workloads.
func (f *Fig13Result) MeanCrossover() (cross float64, speedup float64) {
	var cs, ss float64
	n := 0
	for _, row := range f.Rows {
		if row.Crossover < 0 {
			continue
		}
		cs += float64(row.Crossover)
		ss += row.Speedup1k
		n++
	}
	if n == 0 {
		return -1, 0
	}
	return cs / float64(n), ss / float64(n)
}

// String renders the measured cost model and the derived series.
func (f *Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: design space exploration overhead (latency domain)\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "app\tsim/pt\tRp setup\tRp/pt\tgraph/pt\tcrossover\tspeedup@1000\tworkers\tRp-par\tgraph-par")
	for _, row := range f.Rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%v\t%v\t%d\t%.1fx\t%d\t%.2fx\t%.2fx\n",
			row.App, row.SimPoint.Round(time.Microsecond), row.Setup.Round(time.Microsecond),
			row.RpPoint, row.GraphPoint, row.Crossover, row.Speedup1k,
			row.Workers, row.RpPar, row.GraphPar)
	}
	w.Flush()
	cross, speed := f.MeanCrossover()
	fmt.Fprintf(&b, "\nmean crossover: %.0f design points; mean speedup at 1000 points: %.0fx\n", cross, speed)
	fmt.Fprintf(&b, "(paper: crossover ~38 points, 26x average speedup at 1000 points)\n")
	return b.String()
}
