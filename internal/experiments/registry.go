package experiments

import (
	"fmt"
	"sort"
)

// Descriptor names one reproducible experiment.
type Descriptor struct {
	ID    string
	Title string
	Run   func(r *Runner) (fmt.Stringer, error)
}

// Registry returns every experiment, keyed by the paper's figure/table ids.
func Registry() []Descriptor {
	ds := []Descriptor{
		{"fig1", "hidden penalties and interaction cost", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig1()
		}},
		{"fig2", "simulation speed and exploration scaling", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig2("416.gamess")
		}},
		{"fig3", "overlapped-event accounting vs pipeline-stall analysis", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig3()
		}},
		{"fig4", "critical-path switch vs single-critical-path analysis", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig4()
		}},
		{"fig5", "representative stall-event stacks (416.gamess)", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig5("416.gamess")
		}},
		{"fig6a", "design exploration scenario (416.gamess)", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig6("416.gamess")
		}},
		{"fig6b", "design exploration scenario (437.leslie3d)", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig6("437.leslie3d")
		}},
		{"fig6c", "exploration coverage comparison", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig6c("416.gamess", 250)
		}},
		{"fig10", "dependence-graph model accuracy", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig10(nil)
		}},
		{"fig11a", "prediction accuracy, bottleneck latencies halved", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig11("a", 0.5)
		}},
		{"fig11b", "prediction accuracy, latencies reduced to 10~25%", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig11("b", 0.15)
		}},
		{"fig12", "bottlenecks and baseline CPI stacks", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig12()
		}},
		{"fig13", "design space exploration overhead", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig13(nil)
		}},
		{"fig14", "execution parameter sensitivity", func(r *Runner) (fmt.Stringer, error) {
			return r.Fig14(nil, nil, nil)
		}},
		{"sec4d", "branch predictor structure study (458.sjeng)", func(r *Runner) (fmt.Stringer, error) {
			return r.PredictorStudy("458.sjeng")
		}},
	}
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].ID < ds[j].ID })
	return ds
}

// Find returns the experiment with the given id.
func Find(id string) (Descriptor, error) {
	for _, d := range Registry() {
		if d.ID == id {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
