package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/stacks"
	"repro/internal/stats"
)

// Fig10Events is the default optimization-event list for the graph-model
// accuracy study (a subset of the paper's list keeps re-simulation counts
// tractable; widen it via the parameter of Fig10).
var Fig10Events = []stacks.Event{
	stacks.L1D, stacks.L2D, stacks.MemD, stacks.FpAdd, stacks.FpMul, stacks.IntDiv,
}

// Fig10Row is one workload's error distribution.
type Fig10Row struct {
	App     string
	Summary stats.Boxplot // |graph - sim|/sim in percent over all configs
	Configs int
}

// Fig10Result reproduces Figure 10: the dependence-graph model's cycle
// error against re-simulation when one-cycle latencies are imposed on
// combinations of up to two events.
type Fig10Result struct {
	Rows   []Fig10Row
	Events []stacks.Event
}

// Fig10 runs the graph-model accuracy study over the whole suite. events
// may be nil to use Fig10Events.
func (r *Runner) Fig10(events []stacks.Event) (*Fig10Result, error) {
	if events == nil {
		events = Fig10Events
	}
	// Up-to-two-event one-cycle optimization configurations.
	var configs []stacks.Latencies
	for i, e := range events {
		configs = append(configs, r.Cfg.Lat.With(e, 1))
		for _, e2 := range events[i+1:] {
			configs = append(configs, r.Cfg.Lat.With(e, 1).With(e2, 1))
		}
	}
	res := &Fig10Result{Events: events}
	for _, name := range Suite() {
		a, err := r.App(name)
		if err != nil {
			return nil, err
		}
		var errs []float64
		for i := range configs {
			l := configs[i]
			truth, err := r.Truth(a, &l)
			if err != nil {
				return nil, err
			}
			pred := float64(a.Graph.LongestPath(&l))
			errs = append(errs, stats.AbsPctErr(pred, truth))
		}
		res.Rows = append(res.Rows, Fig10Row{App: name, Summary: stats.Summarize(errs), Configs: len(configs)})
	}
	return res, nil
}

// String renders the figure as the boxplot table the paper plots.
func (f *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: dependence-graph model error vs. simulator\n")
	fmt.Fprintf(&b, "(one-cycle latency imposed on up to two of %v; %d configs/app)\n\n",
		f.Events, f.Rows[0].Configs)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "app\tmin%\tq1%\tmedian%\tq3%\tmax%")
	for _, row := range f.Rows {
		s := row.Summary
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", row.App, s.Min, s.Q1, s.Median, s.Q3, s.Max)
	}
	w.Flush()
	return b.String()
}
