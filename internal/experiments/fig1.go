package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stacks"
)

// Fig1Result reproduces Figure 1a quantitatively: on the crafted workload
// whose memory misses hide an FP chain, optimizing the exposed bottleneck
// buys far less than its apparent cost, and the interaction cost between the
// two event kinds is strongly positive (parallel overlap).
type Fig1Result struct {
	BaseCycles    float64
	ApparentSave  float64 // MemD cycles exposed in the baseline stack
	ActualSave    float64 // measured cycles saved when MemD is optimized
	Interaction   int64   // icost(MemD, FpDiv) on the dependence graph
	HiddenPenalty float64 // cycles the hidden FP chain claims back
}

// Fig1 runs the hidden-penalty demonstration.
func (r *Runner) Fig1() (*Fig1Result, error) {
	a, err := r.crafted()
	if err != nil {
		return nil, err
	}
	base := r.Cfg.Lat
	rep := a.Analysis.Representative(&base)
	pen := rep.Penalties(&base)

	opt := base.With(stacks.MemD, 1)
	truthOpt, err := r.Truth(a, &opt)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{
		BaseCycles:   float64(a.Trace.Cycles),
		ApparentSave: pen[stacks.MemD] * (base[stacks.MemD] - 1) / base[stacks.MemD],
		ActualSave:   float64(a.Trace.Cycles) - truthOpt,
		Interaction:  a.Graph.InteractionCost(&base, stacks.MemD, stacks.FpDiv),
	}
	res.HiddenPenalty = res.ApparentSave - res.ActualSave
	return res, nil
}

// String renders the demonstration.
func (f *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1a: penalties hidden in an out-of-order core\n\n")
	fmt.Fprintf(&b, "baseline cycles:          %.0f\n", f.BaseCycles)
	fmt.Fprintf(&b, "apparent MemD exposure:   %.0f cycles\n", f.ApparentSave)
	fmt.Fprintf(&b, "actual saving (re-sim):   %.0f cycles\n", f.ActualSave)
	fmt.Fprintf(&b, "claimed back by the hidden FP chain: %.0f cycles\n", f.HiddenPenalty)
	fmt.Fprintf(&b, "interaction cost icost(MemD, FpDiv): %+d (positive = parallel overlap)\n", f.Interaction)
	return b.String()
}
