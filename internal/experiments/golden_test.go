package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file regression tests for the figure experiments. The simulator is
// deterministic, so the goldens pin exact model outputs (cycle counts, CPIs,
// stack decompositions, census counts) — any behavioural drift in the
// simulator, analysis, baselines or dse engines shows up as a byte diff
// against testdata/*.golden. Wall-clock-derived numbers never enter a golden
// (see golden.go). Regenerate after an intentional model change with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the diff like any other code change.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares v's indented-JSON rendering against the named golden
// file, rewriting the file instead when -update is set.
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden file.\n%s\nRegenerate with -update if the change is intentional.",
			name, goldenDiff(want, got))
	}
}

// goldenDiff renders the first divergent region of want vs got, line-aligned,
// so a failure message shows the drifted field rather than two full JSON
// blobs.
func goldenDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}

// TestGoldenFig2b pins Figure 2's deterministic substrate for the workload
// the paper's panel uses.
func TestGoldenFig2b(t *testing.T) {
	g, err := testRunner().Fig2bGoldenView("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	if g.GridPoints != 960 {
		t.Fatalf("fig13 grid has %d points, want 960", g.GridPoints)
	}
	checkGolden(t, "fig2b_416.gamess.golden", g)
}

// TestGoldenFig6 pins Figure 6's deterministic substrate for both of the
// paper's panels (6a: 416.gamess, 6b: 437.leslie3d).
func TestGoldenFig6(t *testing.T) {
	r := testRunner()
	for _, name := range []string{"416.gamess", "437.leslie3d"} {
		t.Run(name, func(t *testing.T) {
			g, err := r.Fig6GoldenView(name)
			if err != nil {
				t.Fatal(err)
			}
			if g.MeetTarget < 0 || g.MeetTarget > g.Space {
				t.Fatalf("MeetTarget %d outside space of %d points", g.MeetTarget, g.Space)
			}
			checkGolden(t, "fig6_"+name+".golden", g)
		})
	}
}

// TestGoldenFig13 pins both prediction engines' raw outputs over the Figure
// 13 grid for a float-heavy and a memory-bound workload.
func TestGoldenFig13(t *testing.T) {
	g, err := testRunner().Fig13GoldenView([]string{"416.gamess", "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig13.golden", g)
}
