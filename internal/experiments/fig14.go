package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig14Point is one execution-parameter combination's outcome.
type Fig14Point struct {
	SegmentLength int
	Threshold     float64
	Unique        bool
	AvgErr        float64 // geomean over apps of the mean scenario error (%)
	MaxErr        float64 // geomean over apps of the max scenario error (%)
	Stacks        float64 // mean representative stack count per app
	NormTime      float64 // analysis time normalized to the default combo
}

// Fig14Result reproduces Figure 14: sensitivity of accuracy and execution
// time to the segment length, the cosine similarity threshold and the
// uniqueness preservation switch, scored on the Figure 11b scenarios.
type Fig14Result struct {
	Apps   []string
	Points []Fig14Point
}

// Fig14 sweeps the execution parameters over the named workloads (nil for a
// representative subset). Ground truths are shared with Fig11b via the
// Runner cache.
func (r *Runner) Fig14(names []string, segLens []int, thresholds []float64) (*Fig14Result, error) {
	if names == nil {
		names = []string{"416.gamess", "437.leslie3d", "429.mcf", "456.hmmer", "450.soplex"}
	}
	if segLens == nil {
		segLens = []int{1000, 5000, 10000}
	}
	if thresholds == nil {
		thresholds = []float64{0.5, 0.7, 0.9}
	}
	const scale = 0.15 // the Figure 11b scenario

	// Pre-resolve apps, scenarios and truths once.
	apps := make([]*App, 0, len(names))
	truths := make([][]float64, 0, len(names))
	for _, name := range names {
		a, err := r.App(name)
		if err != nil {
			return nil, err
		}
		var ts []float64
		for _, l := range r.Scenarios(a, scale) {
			l := l
			t, err := r.Truth(a, &l)
			if err != nil {
				return nil, err
			}
			ts = append(ts, t)
		}
		apps = append(apps, a)
		truths = append(truths, ts)
	}

	res := &Fig14Result{Apps: names}
	var defaultTime time.Duration
	def := r.Opts
	for _, uniq := range []bool{true, false} {
		for _, seg := range segLens {
			for _, th := range thresholds {
				opts := def
				opts.SegmentLength = seg
				opts.CosineThreshold = th
				opts.PreserveUnique = uniq

				var avgErrs, maxErrs []float64
				var stacksSum float64
				var elapsed time.Duration
				for ai, a := range apps {
					start := time.Now()
					an, err := core.Analyze(a.Trace, &r.Cfg.Structure, &r.Cfg.Lat, opts)
					if err != nil {
						return nil, err
					}
					elapsed += time.Since(start)
					var errs []float64
					for si, l := range r.Scenarios(a, scale) {
						l := l
						errs = append(errs, stats.AbsPctErr(an.Predict(&l), truths[ai][si]))
					}
					avgErrs = append(avgErrs, stats.Mean(errs))
					maxErrs = append(maxErrs, stats.Max(errs))
					stacksSum += float64(an.NumStacks())
				}
				p := Fig14Point{
					SegmentLength: seg,
					Threshold:     th,
					Unique:        uniq,
					AvgErr:        stats.GeoMean(avgErrs),
					MaxErr:        stats.GeoMean(maxErrs),
					Stacks:        stacksSum / float64(len(apps)),
				}
				if uniq == def.PreserveUnique && seg == def.SegmentLength && th == def.CosineThreshold {
					defaultTime = elapsed
				}
				// NormTime filled after the sweep once the default is known.
				p.NormTime = float64(elapsed)
				res.Points = append(res.Points, p)
			}
		}
	}
	if defaultTime <= 0 {
		defaultTime = time.Duration(res.Points[0].NormTime)
	}
	for i := range res.Points {
		res.Points[i].NormTime /= float64(defaultTime)
	}
	return res, nil
}

// String renders the sweep.
func (f *Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: execution parameter sensitivity (apps: %s)\n\n", strings.Join(f.Apps, ", "))
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "unique\tsegment\tcosine\tavg-err%\tmax-err%\tstacks\tnorm-time")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%v\t%d\t%.1f\t%.2f\t%.2f\t%.0f\t%.2f\n",
			p.Unique, p.SegmentLength, p.Threshold, p.AvgErr, p.MaxErr, p.Stacks, p.NormTime)
	}
	w.Flush()
	return b.String()
}
