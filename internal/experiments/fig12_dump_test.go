package experiments

import "testing"

// TestFig12Dump prints the suite's baseline CPI stacks for inspection and
// checks basic sanity: positive CPIs and diverse top bottlenecks.
func TestFig12Dump(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide simulation")
	}
	r := testRunner()
	f, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	seen := map[string]bool{}
	for _, row := range f.Rows {
		if row.CPI <= 0.2 || row.CPI > 50 {
			t.Errorf("%s: implausible CPI %.2f", row.App, row.CPI)
		}
		best, bestC := "", 0.0
		for e, c := range row.Penalties {
			if e != 0 && c > bestC { // skip Base
				best, bestC = stacksEventName(e), c
			}
		}
		seen[best] = true
	}
	if len(seen) < 4 {
		t.Errorf("top bottlenecks not diverse: %v", seen)
	}
}

func stacksEventName(e int) string {
	return [...]string{"Base", "L1I", "L2I", "MemI", "ITLB", "L1D", "L2D", "MemD", "DTLB",
		"Agu", "Store", "Branch", "IntAlu", "IntMul", "IntDiv", "FpAdd", "FpMul", "FpDiv"}[e]
}
