package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty input must yield 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %g", g)
	}
	// Zeros are clamped to epsilon, not collapsing the mean to zero.
	if g := GeoMean([]float64{0, 4}); g <= 0 {
		t.Fatalf("GeoMean with zero = %g", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// The input slice is not reordered.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if !sort.SliceIsSorted([]float64{in[0]}, func(i, j int) bool { return false }) && in[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

// TestBoxplotOrdering checks the five-number summary is always ordered.
func TestBoxplotOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		b := Summarize(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsPctErr(t *testing.T) {
	if e := AbsPctErr(110, 100); math.Abs(e-10) > 1e-12 {
		t.Fatalf("AbsPctErr = %g", e)
	}
	if e := AbsPctErr(90, 100); math.Abs(e-10) > 1e-12 {
		t.Fatalf("AbsPctErr symmetric = %g", e)
	}
	if AbsPctErr(0, 0) != 0 {
		t.Fatal("0/0 error must be 0")
	}
	if !math.IsInf(AbsPctErr(1, 0), 1) {
		t.Fatal("x/0 error must be +Inf")
	}
}

func TestBoxplotString(t *testing.T) {
	b := Summarize([]float64{1, 2, 3})
	if b.String() == "" {
		t.Fatal("empty rendering")
	}
}
