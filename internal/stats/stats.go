// Package stats provides the small set of descriptive statistics the
// evaluation harness needs: means, geometric means, quantiles and the
// five-number boxplot summaries used by the paper's Figure 10.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive inputs are shifted
// by epsilon so that zero errors do not collapse the mean to zero; this
// mirrors the common practice for error geomeans. Empty input yields 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-9
	var s float64
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Boxplot is the five-number summary drawn as one box-and-whiskers glyph.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) Boxplot {
	return Boxplot{
		Min:    Min(xs),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (b Boxplot) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f",
		b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// AbsPctErr returns |predicted-actual| / actual in percent. A zero actual
// with nonzero predicted yields +Inf; both zero yields 0.
func AbsPctErr(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual) * 100
}
