package repro

// One benchmark per table and figure of the paper's evaluation, plus the
// micro-benchmarks behind the cost model. The figure benchmarks share a
// cached Runner (simulations and analyses are reused across iterations), so
// their value is the reported metrics — err%, crossover, speedup — rather
// than ns/op; the Table I/II and Predict benchmarks measure real throughput.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFig11b -benchmem

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/stacks"
	"repro/internal/store"
	"repro/internal/workload"
)

// benchMicroOps keeps whole-suite benchmarks tractable on one core.
const benchMicroOps = 8000

var (
	runnerOnce sync.Once
	benchR     *experiments.Runner
)

func benchRunner() *experiments.Runner {
	runnerOnce.Do(func() { benchR = experiments.NewRunner(benchMicroOps) })
	return benchR
}

// --- Table II: the baseline simulator ---------------------------------

// BenchmarkTableIIBaselineSim measures the cycle-level simulator's
// throughput on the Table II configuration.
func BenchmarkTableIIBaselineSim(b *testing.B) {
	prof, _ := workload.ByName("416.gamess")
	uops := workload.Stream(prof, 1, 20000)
	cfg := config.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(uops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(uops)*b.N)/b.Elapsed().Seconds()/1e6, "Mµops/s")
}

// --- Table I: the dependence-graph model -------------------------------

// BenchmarkTableIGraphBuild measures dependence-graph construction from a
// trace (all Table I constraints).
func BenchmarkTableIGraphBuild(b *testing.B) {
	prof, _ := workload.ByName("416.gamess")
	uops := workload.Stream(prof, 1, 20000)
	cfg := config.Baseline()
	s, err := cpu.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(uops)*b.N)/b.Elapsed().Seconds()/1e6, "Mµops/s")
}

// BenchmarkGraphLongestPath measures one Fields-style reconstruction pass.
func BenchmarkGraphLongestPath(b *testing.B) {
	prof, _ := workload.ByName("416.gamess")
	uops := workload.Stream(prof, 1, 20000)
	cfg := config.Baseline()
	s, _ := cpu.New(cfg)
	tr, err := s.Run(uops)
	if err != nil {
		b.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LongestPath(&cfg.Lat)
	}
}

// BenchmarkAnalyze measures the full RpStacks generation pipeline
// (segmentation + traversal + reduction).
func BenchmarkAnalyze(b *testing.B) {
	prof, _ := workload.ByName("416.gamess")
	uops := workload.Stream(prof, 1, 10000)
	cfg := config.Baseline()
	s, _ := cpu.New(cfg)
	tr, err := s.Run(uops)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(uops)*b.N)/b.Elapsed().Seconds()/1e3, "kµops/s")
}

// BenchmarkPredictPerPoint measures one RpStacks design-point prediction —
// the constant that makes Figure 13 flat.
func BenchmarkPredictPerPoint(b *testing.B) {
	prof, _ := workload.ByName("416.gamess")
	uops := workload.Stream(prof, 1, 10000)
	cfg := config.Baseline()
	s, _ := cpu.New(cfg)
	tr, err := s.Run(uops)
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	l := cfg.Lat.With(stacks.L1D, 2).With(stacks.FpAdd, 3)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += a.Predict(&l)
	}
	_ = sink
}

// BenchmarkSimilarity measures the modified cosine similarity kernel
// (Figure 9).
func BenchmarkSimilarity(b *testing.B) {
	cfg := config.Baseline()
	var x, y stacks.Stack
	x.Add(stacks.L1D, 120)
	x.Add(stacks.FpAdd, 40)
	x.Add(stacks.Base, 300)
	y.Add(stacks.L1D, 100)
	y.Add(stacks.FpMul, 25)
	y.Add(stacks.Base, 290)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += stacks.Similarity(&x, &y, &cfg.Lat)
	}
	_ = sink
}

// --- Figures ------------------------------------------------------------

// BenchmarkFig2aSimulationSpeed reports the measured host speeds behind
// Figure 2a.
func BenchmarkFig2aSimulationSpeed(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig2("416.gamess")
		if err != nil {
			b.Fatal(err)
		}
		measured := 0
		for _, row := range f.Rows {
			if !row.Measured {
				continue
			}
			// Metric units must be single tokens: the first measured row
			// is the plain simulator, the second is RpStacks end to end.
			unit := "sim-MIPS"
			if measured > 0 {
				unit = "rpstacks-MIPS"
			}
			b.ReportMetric(row.MIPS, unit)
			measured++
		}
	}
}

// BenchmarkFig2bExplorationScaling reports the exploration-time speedup at
// 100 and 1000 design points.
func BenchmarkFig2bExplorationScaling(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig2("416.gamess")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Speedup(100), "speedup@100")
		b.ReportMetric(f.Speedup(1000), "speedup@1000")
	}
}

// BenchmarkFig5PathStacks regenerates the path-stack panel and reports how
// few representative stacks survive reduction.
func BenchmarkFig5PathStacks(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig5("416.gamess")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(f.TotalStacks), "stacks")
	}
}

func benchFig6(b *testing.B, app string) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig6(app)
		if err != nil {
			b.Fatal(err)
		}
		var rpWorst, cpWorst, fmWorst float64
		for j := range f.Scenarios {
			rp, cp, fm := f.Scenarios[j].Err()
			rpWorst = max(rpWorst, rp)
			cpWorst = max(cpWorst, cp)
			fmWorst = max(fmWorst, fm)
		}
		b.ReportMetric(float64(f.Space), "points")
		b.ReportMetric(rpWorst, "rp-maxerr%")
		b.ReportMetric(cpWorst, "cp1-maxerr%")
		b.ReportMetric(fmWorst, "fmt-maxerr%")
	}
}

// BenchmarkFig6aGamessExploration regenerates the 416.gamess scenario.
func BenchmarkFig6aGamessExploration(b *testing.B) { benchFig6(b, "416.gamess") }

// BenchmarkFig6bLeslie3dExploration regenerates the 437.leslie3d scenario.
func BenchmarkFig6bLeslie3dExploration(b *testing.B) { benchFig6(b, "437.leslie3d") }

// BenchmarkFig6cExplorationCoverage reports coverage within a 400-simulation
// budget.
func BenchmarkFig6cExplorationCoverage(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig6c("416.gamess", 400)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(f.Rows[len(f.Rows)-1].Points), "rp-points")
	}
}

// BenchmarkFig10GraphModelAccuracy reports the graph-vs-simulator error
// distribution across the suite.
func BenchmarkFig10GraphModelAccuracy(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig10(nil)
		if err != nil {
			b.Fatal(err)
		}
		var med, worst float64
		for _, row := range f.Rows {
			med += row.Summary.Median
			worst = max(worst, row.Summary.Max)
		}
		b.ReportMetric(med/float64(len(f.Rows)), "median-err%")
		b.ReportMetric(worst, "max-err%")
	}
}

func benchFig11(b *testing.B, label string, scale float64) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig11(label, scale)
		if err != nil {
			b.Fatal(err)
		}
		rp, cp, fm := f.Means()
		b.ReportMetric(rp, "rp-err%")
		b.ReportMetric(cp, "cp1-err%")
		b.ReportMetric(fm, "fmt-err%")
	}
}

// BenchmarkFig11aHalfLatency regenerates Figure 11a (latencies halved).
func BenchmarkFig11aHalfLatency(b *testing.B) { benchFig11(b, "a", 0.5) }

// BenchmarkFig11bAggressive regenerates Figure 11b (latencies to 10~25%).
func BenchmarkFig11bAggressive(b *testing.B) { benchFig11(b, "b", 0.15) }

// BenchmarkFig12BaselineCPIStacks regenerates the suite CPI stacks and
// reports the mean baseline CPI.
func BenchmarkFig12BaselineCPIStacks(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		var cpi float64
		for _, row := range f.Rows {
			cpi += row.CPI
		}
		b.ReportMetric(cpi/float64(len(f.Rows)), "mean-CPI")
	}
}

// BenchmarkFig13ExplorationOverhead reports the measured crossover point
// and the speedup at 1000 design points (the paper's 38-point crossover and
// 26x headline).
func BenchmarkFig13ExplorationOverhead(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig13([]string{"416.gamess", "429.mcf", "456.hmmer"})
		if err != nil {
			b.Fatal(err)
		}
		cross, speed := f.MeanCrossover()
		b.ReportMetric(cross, "crossover-points")
		b.ReportMetric(speed, "speedup@1000")
	}
}

// BenchmarkFig14ParameterSensitivity sweeps a reduced parameter grid and
// reports the accuracy cost of disabling uniqueness preservation.
func BenchmarkFig14ParameterSensitivity(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Fig14([]string{"416.gamess", "437.leslie3d"},
			[]int{1000, 5000}, []float64{0.7})
		if err != nil {
			b.Fatal(err)
		}
		var on, off float64
		for _, p := range f.Points {
			if p.SegmentLength != 5000 || p.Threshold != 0.7 {
				continue
			}
			if p.Unique {
				on = p.MaxErr
			} else {
				off = p.MaxErr
			}
		}
		b.ReportMetric(on, "maxerr-unique-on%")
		b.ReportMetric(off, "maxerr-unique-off%")
	}
}

// BenchmarkExploreRpStacks1000 sweeps ~1000 latency points through a
// prebuilt analysis, the inner loop of the paper's headline claim.
func BenchmarkExploreRpStacks1000(b *testing.B) {
	r := benchRunner()
	a, err := r.App("416.gamess")
	if err != nil {
		b.Fatal(err)
	}
	sp := dse.Space{Axes: []dse.Axis{
		{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
		{Event: stacks.L2D, Values: []float64{6, 9, 12, 15, 18}},
		{Event: stacks.FpAdd, Values: []float64{2, 3, 4, 5, 6}},
		{Event: stacks.FpMul, Values: []float64{2, 4, 6}},
		{Event: stacks.MemD, Values: []float64{66, 100, 133}},
	}}
	points := sp.Enumerate(r.Cfg.Lat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dse.ExploreRpStacks(a.Analysis, points)
	}
	b.ReportMetric(float64(len(points)), "points")
}

// --- Serial / parallel / batched sweep triplets --------------------------
//
// Each triplet runs the identical sweep three ways: serially with the scalar
// per-point evaluator (BatchSize 1), sharded over GOMAXPROCS scalar workers,
// and batched (K design points per model pass, serial and sharded). On a
// multicore host the parallel member's ns/op should beat its serial sibling
// roughly by the worker count, and the batched members beat their scalar
// siblings at equal worker count by amortizing model traffic across lanes
// (compare with `go test -bench='ExploreGraph(Serial|Parallel|Batched)'
// -benchmem`). All members produce bit-identical Results — the triplets
// measure execution strategy only. The graph members also demonstrate the
// evaluator reuse: allocations stay O(workers) per sweep instead of one
// O(nodes) distance buffer per design point.

// benchSweepSpace is the point list the sweep pairs walk.
func benchSweepSpace(base stacks.Latencies) []stacks.Latencies {
	sp := dse.Space{Axes: []dse.Axis{
		{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
		{Event: stacks.L2D, Values: []float64{6, 12, 18}},
		{Event: stacks.FpAdd, Values: []float64{2, 4, 6}},
		{Event: stacks.MemD, Values: []float64{66, 133}},
	}}
	return sp.Enumerate(base)
}

func benchExploreGraph(b *testing.B, workers, batch int) {
	r := benchRunner()
	a, err := r.App("416.gamess")
	if err != nil {
		b.Fatal(err)
	}
	points := benchSweepSpace(r.Cfg.Lat)
	opts := dse.ExploreOptions{Parallelism: workers, BatchSize: batch}
	b.ReportAllocs()
	b.ResetTimer()
	var width int
	for i := 0; i < b.N; i++ {
		rep, err := dse.ExploreGraphOpts(a.Graph, points, opts)
		if err != nil {
			b.Fatal(err)
		}
		width = rep.Batch
	}
	b.ReportMetric(float64(len(points)), "points")
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(width), "lanes")
}

// BenchmarkExploreGraphSerial is the one-worker scalar graph-reconstruction
// sweep (BatchSize 1: one pass over the graph per design point).
func BenchmarkExploreGraphSerial(b *testing.B) { benchExploreGraph(b, 1, 1) }

// BenchmarkExploreGraphParallel is the same scalar sweep sharded over
// GOMAXPROCS workers, one reusable evaluator each.
func BenchmarkExploreGraphParallel(b *testing.B) {
	benchExploreGraph(b, runtime.GOMAXPROCS(0), 1)
}

// BenchmarkExploreGraphBatched is the one-worker batched sweep: K design
// points per pass over the graph (autotuned width). Its speedup over
// BenchmarkExploreGraphSerial is the per-worker gain of lane batching.
func BenchmarkExploreGraphBatched(b *testing.B) { benchExploreGraph(b, 1, 0) }

// BenchmarkExploreGraphBatchedParallel stacks both axes: GOMAXPROCS workers,
// each evaluating K lanes per graph pass.
func BenchmarkExploreGraphBatchedParallel(b *testing.B) {
	benchExploreGraph(b, runtime.GOMAXPROCS(0), 0)
}

func benchExploreRpStacksSweep(b *testing.B, workers, batch int) {
	r := benchRunner()
	a, err := r.App("416.gamess")
	if err != nil {
		b.Fatal(err)
	}
	points := benchSweepSpace(r.Cfg.Lat)
	opts := dse.ExploreOptions{Parallelism: workers, BatchSize: batch}
	b.ReportAllocs()
	b.ResetTimer()
	var width int
	for i := 0; i < b.N; i++ {
		rep, err := dse.ExploreRpStacksOpts(a.Analysis, points, opts)
		if err != nil {
			b.Fatal(err)
		}
		width = rep.Batch
	}
	b.ReportMetric(float64(len(points)), "points")
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(width), "lanes")
}

// BenchmarkExploreRpStacksSerial is the one-worker scalar RpStacks sweep.
func BenchmarkExploreRpStacksSerial(b *testing.B) { benchExploreRpStacksSweep(b, 1, 1) }

// BenchmarkExploreRpStacksParallel shards the scalar RpStacks sweep over
// GOMAXPROCS workers sharing the read-only analysis.
func BenchmarkExploreRpStacksParallel(b *testing.B) {
	benchExploreRpStacksSweep(b, runtime.GOMAXPROCS(0), 1)
}

// BenchmarkExploreRpStacksBatched is the one-worker batched RpStacks sweep:
// the representative stacks are re-weighted for K design points per pass.
func BenchmarkExploreRpStacksBatched(b *testing.B) { benchExploreRpStacksSweep(b, 1, 0) }

// BenchmarkExploreRpStacksBatchedParallel stacks both axes for the RpStacks
// engine.
func BenchmarkExploreRpStacksBatchedParallel(b *testing.B) {
	benchExploreRpStacksSweep(b, runtime.GOMAXPROCS(0), 0)
}

// --- Fleet: coordinator/worker chunk leasing --------------------------

// benchFleetGraph runs the fig13-style graph sweep through an in-process
// fleet: one coordinator behind httptest, nworkers workers (one evaluator
// goroutine each, so scaling comes from the fleet, not intra-worker
// parallelism) publishing chunk blobs into a shared store root. The first
// sweep is run untimed to pay each worker's one-time workload rebuild, the
// same cost rpworker amortizes across a process lifetime.
//
// On a multi-core host the two-worker wall-clock approaches half the
// one-worker number (chunk evaluations run truly in parallel); on a
// single-core host the remaining gain comes from overlapping one worker's
// blob publication and lease round-trips with the other's evaluation.
func benchFleetGraph(b *testing.B, nworkers int) {
	r := benchRunner()
	a, err := r.App("416.gamess")
	if err != nil {
		b.Fatal(err)
	}
	sp := dse.Space{Axes: []dse.Axis{
		{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
		{Event: stacks.L2D, Values: []float64{6, 12, 18}},
		{Event: stacks.FpAdd, Values: []float64{2, 4, 6}},
		{Event: stacks.MemD, Values: []float64{66, 133}},
	}}
	points := sp.Enumerate(r.Cfg.Lat)
	fp, err := dse.SweepFingerprintGraph(a.Graph, points)
	if err != nil {
		b.Fatal(err)
	}
	shared, err := store.OpenShared(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: time.Minute,
		WaitHint: time.Millisecond,
	})
	ts := httptest.NewServer(coord)
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < nworkers; i++ {
		w := fleet.NewWorker(fleet.WorkerConfig{
			CoordinatorURL: ts.URL,
			Shared:         shared,
			Concurrency:    1,
			ID:             fmt.Sprintf("bench-w%d", i),
			PollInterval:   time.Millisecond,
		})
		go func() { _ = w.Run(ctx) }()
	}
	sw := fleet.Sweep{
		Spec: fleet.SweepSpec{
			Workload: "416.gamess",
			Seed:     42,
			MicroOps: benchMicroOps,
			Engine:   "graph",
			Axes:     fleet.FormatAxes(sp.Axes),
		},
		Points:      points,
		Fingerprint: fp,
		ChunkSize:   9, // 72 points -> 8 chunks
	}
	if _, err := coord.Run(ctx, sw); err != nil { // untimed worker warmup
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Run(ctx, sw); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(points)), "points")
	b.ReportMetric(float64(nworkers), "fleet_workers")
}

// BenchmarkFleetGraphWorkers1 is the single-worker fleet baseline: all lease
// and blob-publication overhead, no parallelism.
func BenchmarkFleetGraphWorkers1(b *testing.B) { benchFleetGraph(b, 1) }

// BenchmarkFleetGraphWorkers2 doubles the fleet; its wall-clock speedup over
// BenchmarkFleetGraphWorkers1 is the fleet's scaling on one host.
func BenchmarkFleetGraphWorkers2(b *testing.B) { benchFleetGraph(b, 2) }
