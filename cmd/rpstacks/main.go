// Command rpstacks is the front door of the RpStacks reproduction: it runs
// single-workload analyses, per-configuration predictions and every paper
// experiment from the command line.
//
// Usage:
//
//	rpstacks config
//	rpstacks list
//	rpstacks analyze  -app 416.gamess [-n 60000] [-seg 5000] [-cos 0.7] [-unique=true]
//	rpstacks predict  -app 416.gamess -set L1D=2,FpAdd=3 [-validate]
//	rpstacks experiment fig11b|all [-n 12000]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/stacks"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "config":
		err = cmdConfig()
	case "list":
		err = cmdList()
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rpstacks: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpstacks:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rpstacks — representative stall-event stack analysis

commands:
  config                       print the baseline design point (Table II)
  list                         list workloads and experiments
  analyze  -app NAME [flags]   analyze one workload, print its RpStacks
  predict  -app NAME -set ...  predict CPI for a modified latency point
  experiment ID|all [flags]    regenerate a paper figure or table
`)
}

func cmdConfig() error {
	out, err := config.Baseline().JSON()
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func cmdList() error {
	fmt.Println("workloads:")
	for _, n := range workload.Names() {
		fmt.Println("  " + n)
	}
	fmt.Println("\nexperiments:")
	for _, d := range experiments.Registry() {
		fmt.Printf("  %-8s %s\n", d.ID, d.Title)
	}
	return nil
}

func runnerFlags(fs *flag.FlagSet) (n *int, run func() *experiments.Runner) {
	n = fs.Int("n", 60000, "measured µops per workload")
	seg := fs.Int("seg", 5000, "segment length (µops)")
	cos := fs.Float64("cos", 0.7, "cosine similarity threshold")
	uniq := fs.Bool("unique", true, "preserve unique-event paths")
	seed := fs.Int64("seed", 42, "workload seed")
	return n, func() *experiments.Runner {
		r := experiments.NewRunner(*n)
		r.Seed = *seed
		r.Opts.SegmentLength = *seg
		r.Opts.CosineThreshold = *cos
		r.Opts.PreserveUnique = *uniq
		return r
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	app := fs.String("app", "416.gamess", "workload name")
	top := fs.Int("top", 8, "paths to display")
	_, mk := runnerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := mk()
	f, err := r.Fig5(*app)
	if err != nil {
		return err
	}
	show := *top
	if show > len(f.PathStacks) {
		show = len(f.PathStacks)
	}
	f.PathStacks = f.PathStacks[:show]
	fmt.Println(f)
	return nil
}

// parseSet parses "L1D=2,FpAdd=3" into a latency assignment on top of base.
func parseSet(base stacks.Latencies, spec string) (stacks.Latencies, error) {
	l := base
	if spec == "" {
		return l, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return l, fmt.Errorf("bad -set entry %q (want Event=cycles)", kv)
		}
		ev, err := stacks.ParseEvent(strings.TrimSpace(parts[0]))
		if err != nil {
			return l, err
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return l, fmt.Errorf("bad cycle count in %q: %v", kv, err)
		}
		l[ev] = v
	}
	return l, l.Validate()
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	app := fs.String("app", "416.gamess", "workload name")
	set := fs.String("set", "", "latency overrides, e.g. L1D=2,FpAdd=3")
	validate := fs.Bool("validate", false, "re-simulate to score the prediction")
	_, mk := runnerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := mk()
	a, err := r.App(*app)
	if err != nil {
		return err
	}
	l, err := parseSet(r.Cfg.Lat, *set)
	if err != nil {
		return err
	}
	n := float64(len(a.Trace.Records))
	fmt.Printf("baseline CPI:  %.4f (simulated)\n", a.Trace.CPI())
	fmt.Printf("RpStacks CPI:  %.4f (predicted for %s)\n", a.Analysis.Predict(&l)/n, *set)
	fmt.Printf("CP1 CPI:       %.4f\n", a.CP1.Predict(&l)/n)
	fmt.Printf("FMT CPI:       %.4f\n", a.FMT.Predict(&l)/n)
	if *validate {
		truth, err := r.Truth(a, &l)
		if err != nil {
			return err
		}
		fmt.Printf("simulated CPI: %.4f (ground truth)\n", truth/n)
	}
	return nil
}

func cmdExperiment(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("experiment: need an id (or 'all'); try 'rpstacks list'")
	}
	id := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	_, mk := runnerFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	r := mk()
	var ids []string
	if id == "all" {
		for _, d := range experiments.Registry() {
			ids = append(ids, d.ID)
		}
		sort.Strings(ids)
	} else {
		ids = []string{id}
	}
	for _, id := range ids {
		d, err := experiments.Find(id)
		if err != nil {
			return err
		}
		out, err := d.Run(r)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
		fmt.Println(strings.Repeat("-", 72))
	}
	return nil
}
