package main

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stacks"
)

func TestParseSet(t *testing.T) {
	base := config.Baseline().Lat
	l, err := parseSet(base, "L1D=2, FpAdd=3")
	if err != nil {
		t.Fatal(err)
	}
	if l[stacks.L1D] != 2 || l[stacks.FpAdd] != 3 {
		t.Fatalf("parsed %v", l)
	}
	if l[stacks.MemD] != base[stacks.MemD] {
		t.Fatal("untouched events must keep baseline values")
	}
	if _, err := parseSet(base, "NoSuch=2"); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := parseSet(base, "L1D"); err == nil {
		t.Fatal("missing value accepted")
	}
	if _, err := parseSet(base, "L1D=x"); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := parseSet(base, "Base=3"); err == nil {
		t.Fatal("changing Base must fail validation")
	}
	same, err := parseSet(base, "")
	if err != nil || same != base {
		t.Fatal("empty spec must be the baseline")
	}
}
