// Command rpworker is a sweep-fleet worker: it pulls chunk leases from an
// rpserved fleet coordinator (-coordinator), deterministically rebuilds each
// sweep's engine inputs from the leased recipe, evaluates its chunks through
// the batched sweep engines, and publishes result blobs into the shared
// store root both processes mount (-store-dir, same flag value as rpserved's).
//
// Usage:
//
//	rpworker -coordinator http://host:8321 -store-dir /var/lib/rpserved \
//	         [-concurrency 8] [-addr :8322] [-id worker-a] [-poll 200ms] \
//	         [-pprof-addr localhost:6061] [-trace-out worker.trace.json]
//
// The worker proves sweep identity before evaluating anything: it recomputes
// the sweep fingerprint from its rebuilt inputs and exits with an error if it
// disagrees with the coordinator's — a mismatched worker never publishes.
//
// With -addr set, GET /healthz and GET /readyz are served with rpserved's
// semantics: /healthz always answers 200 (status ok or draining, plus
// uptime_seconds), /readyz flips to 503 once draining — and GET /metrics
// serves the worker's own rpstacks_worker_* families (including
// rpstacks_process_start_time_seconds) in Prometheus exposition format. The first
// SIGINT/SIGTERM drains — the chunk in flight finishes and is published —
// and a second one aborts hard.
//
// The worker always traces itself: its lease/evaluate/publish spans are
// published as clock-synced fragments beside the chunk blobs (the
// coordinator merges them into the fleet timeline at
// /debug/trace?job=<id>), and -trace-out additionally writes this process's
// own span timeline as Chrome trace-event JSON on exit — the standalone
// fragment dump for debugging one worker without a coordinator view.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	coordinator := flag.String("coordinator", "", "base URL of the rpserved fleet coordinator (required)")
	storeDir := flag.String("store-dir", "", "artifact store directory shared with the coordinator (required; the fleet root is <dir>/fleet)")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "per-chunk sweep parallelism")
	addr := flag.String("addr", "", "listen address for /healthz and /readyz (empty: no listener)")
	id := flag.String("id", "", "worker identity reported to the coordinator (default <hostname>-<pid>)")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle re-poll interval when no chunk is grantable")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof runtime profiling (empty: off)")
	traceOut := flag.String("trace-out", "", "write this worker's span timeline as Chrome trace-event JSON on exit (empty: off)")
	flag.Parse()

	if err := run(*coordinator, *storeDir, *concurrency, *addr, *id, *poll, *pprofAddr, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "rpworker: %v\n", err)
		os.Exit(1)
	}
}

func run(coordinator, storeDir string, concurrency int, addr, id string, poll time.Duration, pprofAddr, traceOut string) error {
	if coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	if storeDir == "" {
		return fmt.Errorf("-store-dir is required")
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Same layout convention as rpserved -fleet-coordinator: the shared blob
	// root is the fleet/ subdirectory of the artifact store directory.
	shared, err := store.OpenShared(storeDir + "/fleet")
	if err != nil {
		return fmt.Errorf("opening fleet share: %w", err)
	}

	w := fleet.NewWorker(fleet.WorkerConfig{
		CoordinatorURL: coordinator,
		Shared:         shared,
		Concurrency:    concurrency,
		ID:             id,
		PollInterval:   poll,
		Logger:         logger,
	})

	if addr != "" {
		go func() {
			logger.Info("health listener", slog.String("addr", addr))
			if err := http.ListenAndServe(addr, w.Handler()); err != nil {
				logger.Warn("health listener failed", slog.String("error", err.Error()))
			}
		}()
	}
	if pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", slog.String("addr", pprofAddr))
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				logger.Warn("pprof listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logger.Info("draining: finishing the chunk in flight")
		w.Drain()
		<-sigs
		logger.Warn("second signal: aborting")
		cancel()
	}()

	logger.Info("worker starting",
		slog.String("coordinator", coordinator),
		slog.String("id", w.ID()),
		slog.Int("concurrency", concurrency))
	runErr := w.Run(ctx)
	if traceOut != "" {
		// One-track timeline named by the worker id — the same track shape
		// this process contributes to the coordinator's merged view, without
		// needing a coordinator to look at it.
		tl := &obs.Timeline{Tracks: []obs.ProcessTrack{{Name: w.ID(), Records: w.Tracer().Snapshot()}}}
		f, err := os.Create(traceOut)
		if err == nil {
			err = obs.WriteChromeTimeline(f, tl)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			logger.Warn("writing trace failed", slog.String("path", traceOut), slog.String("error", err.Error()))
		} else {
			logger.Info("trace written", slog.String("path", traceOut))
		}
	}
	if runErr != nil && runErr != context.Canceled {
		return runErr
	}
	logger.Info("worker exiting")
	return nil
}
