// Command rpserved runs the design-space exploration service: an HTTP server
// accepting exploration jobs (POST /jobs), executing them on a bounded worker
// pool over the dse sweep engines, and amortizing the one-time
// simulate/analyze setup across requests through a content-addressed cache.
//
// Usage:
//
//	rpserved [-addr :8321] [-workers 4] [-queue 64] [-parallelism 8] \
//	         [-cache 32] [-max-grid 1048576] [-timeout 2m] [-drain 30s] \
//	         [-store-dir /var/lib/rpserved] [-store-max-bytes 1073741824] \
//	         [-pprof-addr localhost:6060]
//
// With -store-dir set, the simulate/analyze artifacts are also published to
// an on-disk content-addressed store: a restarted rpserved warm-starts from
// the directory and serves disk hits for every trace it has ever analyzed,
// instead of re-simulating. -store-max-bytes bounds the directory with LRU
// eviction (0 = unbounded).
//
// Endpoints:
//
//	POST /jobs        submit a job (JSON body; see internal/serve.JobRequest)
//	GET  /jobs        list known jobs
//	GET  /jobs/{id}   poll one job, including its ranked results when done
//	GET  /metrics     Prometheus text exposition
//	GET  /healthz     liveness and queue state
//	GET  /readyz      readiness: 503 while draining or shedding, 200 otherwise
//	GET  /debug/trace per-job flight-recorder trace (?job=<id>&format=chrome|folded);
//	                  fleet-delegated jobs serve the merged multi-process
//	                  timeline — one skew-normalized track per worker
//	GET  /debug/audit per-job shadow-audit accuracy report (?job=<id>)
//	GET  /debug/jobs  job journal: wide-event flight records, filterable by
//	                  ?status=&engine=&since=<RFC3339>&limit=
//	GET  /debug/jobs/{id}         one flight record with its retained event log;
//	                  store-backed, so records survive restarts
//	GET  /debug/jobs/{id}/events  live Server-Sent Events stream of the job's
//	                  lifecycle (queued → running → progress → fleet → done),
//	                  resumable via the Last-Event-ID header or ?after=<seq>
//	GET  /debug/status aggregate operational snapshot (?format=json|html)
//
// The job journal is on by default (bound with -journal-capacity; negative
// disables it) and persists finished flight records through -store-dir.
// -slow-job-threshold logs one structured warning — with the journal's
// per-stage breakdown — for any job slower than the threshold. -slo-rpstacks,
// -slo-graph and -slo-sim declare per-engine latency objectives exported as
// the rpstacks_slo_* families (targets, good/total event counters, and
// multi-window error-budget burn-rate gauges); a window burning faster than
// the -slo-objective budget allows logs a structured warning.
//
// Jobs submitted with "audit_fraction" > 0 are shadow-audited after the
// sweep: a deterministic sample of design points is re-run through the
// ground-truth simulator, per-point CPI error and per-class stall-stack
// divergence feed the rpstacks_audit_* metric families, and points whose
// error exceeds "audit_drift_pct" flip the job's audit_status to "drift".
// With -store-dir set, audit reports survive restarts and stay queryable
// through GET /debug/audit.
//
// With -pprof-addr set, net/http/pprof runtime profiling (CPU, heap,
// goroutine, execution trace) is served on a separate listener.
//
// With -fleet-coordinator set (requires -store-dir), the server additionally
// mounts the /fleet/v1/ chunk-lease protocol and delegates eligible sweeps —
// named-workload jobs under the baseline machine setup — to rpworker
// processes sharing <store-dir>/fleet. Uploaded-trace jobs always sweep
// locally. -fleet-lease-ttl and -fleet-chunk tune lease expiry and lease
// granularity; the rpstacks_fleet_* metric families — including the
// federated per-worker rpstacks_fleet_worker_* summaries workers report on
// completion — land on /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// fleetShareDir is where the fleet's shared blob root lives relative to the
// artifact store directory. rpworker applies the same convention to its
// -store-dir flag, so pointing both binaries at one directory just works.
func fleetShareDir(storeDir string) string { return storeDir + "/fleet" }

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
	queue := flag.Int("queue", 64, "job queue depth before submissions are shed with 429")
	par := flag.Int("parallelism", runtime.GOMAXPROCS(0), "default per-job sweep workers")
	cacheEntries := flag.Int("cache", 32, "entries per artifact cache")
	maxGrid := flag.Int("max-grid", 1<<20, "largest design grid one job may request")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "largest per-job deadline a request may ask for")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace for in-flight jobs")
	storeDir := flag.String("store-dir", "", "directory for the durable artifact store (empty: memory-only)")
	storeMax := flag.Int64("store-max-bytes", 0, "LRU bound on durable store payload bytes (0: unbounded)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof runtime profiling (empty: off)")
	fleetCoord := flag.Bool("fleet-coordinator", false, "coordinate a sweep fleet: mount /fleet/v1/ and lease sweep chunks to rpworker processes (requires -store-dir)")
	fleetTTL := flag.Duration("fleet-lease-ttl", 10*time.Second, "fleet lease heartbeat TTL before a chunk is re-leased")
	fleetChunk := flag.Int("fleet-chunk", 0, "design points per fleet lease (0: ~32 chunks per sweep)")
	journalCap := flag.Int("journal-capacity", 0, "retained job journal flight records (0: 512; negative: journal off)")
	slowJob := flag.Duration("slow-job-threshold", 0, "log a structured warning with the per-stage breakdown for jobs slower than this (0: off)")
	sloRp := flag.Duration("slo-rpstacks", 0, "latency objective for rpstacks-engine jobs (0: no SLO)")
	sloGraph := flag.Duration("slo-graph", 0, "latency objective for graph-engine jobs (0: no SLO)")
	sloSim := flag.Duration("slo-sim", 0, "latency objective for sim-engine jobs (0: no SLO)")
	sloObjective := flag.Float64("slo-objective", 0, "SLO success-ratio objective shared by every target (0: 0.99)")
	flag.Parse()

	obs := obsOpts{
		journalCap:   *journalCap,
		slowJob:      *slowJob,
		sloObjective: *sloObjective,
		sloTargets:   map[string]time.Duration{},
	}
	for engine, d := range map[string]time.Duration{"rpstacks": *sloRp, "graph": *sloGraph, "sim": *sloSim} {
		if d > 0 {
			obs.sloTargets[engine] = d
		}
	}

	if err := run(*addr, *workers, *queue, *par, *cacheEntries, *maxGrid, *timeout, *maxTimeout, *drain, *storeDir, *storeMax, *pprofAddr, *fleetCoord, *fleetTTL, *fleetChunk, obs); err != nil {
		fmt.Fprintf(os.Stderr, "rpserved: %v\n", err)
		os.Exit(1)
	}
}

// obsOpts bundles the journal/SLO observability flags into run.
type obsOpts struct {
	journalCap   int
	slowJob      time.Duration
	sloObjective float64
	sloTargets   map[string]time.Duration
}

func run(addr string, workers, queue, par, cacheEntries, maxGrid int, timeout, maxTimeout, drain time.Duration, storeDir string, storeMax int64, pprofAddr string, fleetCoord bool, fleetTTL time.Duration, fleetChunk int, obs obsOpts) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	if queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", queue)
	}
	if par < 1 {
		return fmt.Errorf("-parallelism must be at least 1, got %d", par)
	}
	lim := serve.DefaultLimits()
	if maxGrid > 0 {
		lim.MaxGridPoints = maxGrid
	}
	if timeout > 0 {
		lim.DefaultTimeout = timeout
	}
	if maxTimeout > 0 {
		lim.MaxTimeout = maxTimeout
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var durable *store.Store
	if storeDir != "" {
		var err error
		durable, err = store.Open(storeDir, store.Options{MaxBytes: storeMax, Logger: logger})
		if err != nil {
			return fmt.Errorf("opening artifact store: %w", err)
		}
		st := durable.Stats()
		logger.Info("artifact store warm-started",
			slog.String("dir", storeDir),
			slog.Int("entries", st.Entries),
			slog.Int64("bytes", st.Bytes))
	}

	var shared *store.Shared
	if fleetCoord {
		if storeDir == "" {
			return fmt.Errorf("-fleet-coordinator requires -store-dir: workers publish chunk results there")
		}
		var err error
		// The fleet blob root lives beside (not inside) the artifact store's
		// objects, under its own subdirectory, so the store's orphan sweep
		// never touches fleet blobs.
		shared, err = store.OpenShared(fleetShareDir(storeDir))
		if err != nil {
			return fmt.Errorf("opening fleet share: %w", err)
		}
		logger.Info("fleet coordinator enabled",
			slog.String("share", fleetShareDir(storeDir)),
			slog.Duration("lease_ttl", fleetTTL))
	}

	svc := serve.New(serve.Config{
		QueueDepth:       queue,
		Workers:          workers,
		SweepParallelism: par,
		CacheEntries:     cacheEntries,
		Limits:           lim,
		Store:            durable,
		Logger:           logger,
		FleetStore:       shared,
		FleetLeaseTTL:    fleetTTL,
		FleetChunkSize:   fleetChunk,
		JournalCapacity:  obs.journalCap,
		SlowJobThreshold: obs.slowJob,
		SLOTargets:       obs.sloTargets,
		SLOObjective:     obs.sloObjective,
	})
	httpSrv := &http.Server{Addr: addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if pprofAddr != "" {
		// The profiler listens on its own mux so /debug/pprof is never
		// exposed on the service address.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", slog.String("addr", pprofAddr))
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				logger.Warn("pprof listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening",
		slog.String("addr", addr),
		slog.Int("workers", workers),
		slog.Int("queue_depth", queue))

	select {
	case err := <-errc:
		return err // the listener failed before any shutdown signal
	case <-ctx.Done():
	}

	logger.Info("draining", slog.Duration("grace", drain))
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the queue.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("stopping listener: %w", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("draining jobs: %w", err)
	}
	logger.Info("drained, exiting")
	return nil
}
