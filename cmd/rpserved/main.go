// Command rpserved runs the design-space exploration service: an HTTP server
// accepting exploration jobs (POST /jobs), executing them on a bounded worker
// pool over the dse sweep engines, and amortizing the one-time
// simulate/analyze setup across requests through a content-addressed cache.
//
// Usage:
//
//	rpserved [-addr :8321] [-workers 4] [-queue 64] [-parallelism 8] \
//	         [-cache 32] [-max-grid 1048576] [-timeout 2m] [-drain 30s]
//
// Endpoints:
//
//	POST /jobs      submit a job (JSON body; see internal/serve.JobRequest)
//	GET  /jobs      list known jobs
//	GET  /jobs/{id} poll one job, including its ranked results when done
//	GET  /metrics   Prometheus text exposition
//	GET  /healthz   liveness and queue state
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
	queue := flag.Int("queue", 64, "job queue depth before submissions are shed with 429")
	par := flag.Int("parallelism", runtime.GOMAXPROCS(0), "default per-job sweep workers")
	cacheEntries := flag.Int("cache", 32, "entries per artifact cache")
	maxGrid := flag.Int("max-grid", 1<<20, "largest design grid one job may request")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "largest per-job deadline a request may ask for")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace for in-flight jobs")
	flag.Parse()

	if err := run(*addr, *workers, *queue, *par, *cacheEntries, *maxGrid, *timeout, *maxTimeout, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "rpserved: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, par, cacheEntries, maxGrid int, timeout, maxTimeout, drain time.Duration) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	if queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", queue)
	}
	if par < 1 {
		return fmt.Errorf("-parallelism must be at least 1, got %d", par)
	}
	lim := serve.DefaultLimits()
	if maxGrid > 0 {
		lim.MaxGridPoints = maxGrid
	}
	if timeout > 0 {
		lim.DefaultTimeout = timeout
	}
	if maxTimeout > 0 {
		lim.MaxTimeout = maxTimeout
	}

	svc := serve.New(serve.Config{
		QueueDepth:       queue,
		Workers:          workers,
		SweepParallelism: par,
		CacheEntries:     cacheEntries,
		Limits:           lim,
	})
	httpSrv := &http.Server{Addr: addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("rpserved: listening on %s (%d workers, queue depth %d)\n", addr, workers, queue)

	select {
	case err := <-errc:
		return err // the listener failed before any shutdown signal
	case <-ctx.Done():
	}

	fmt.Println("rpserved: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the queue.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("stopping listener: %w", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("draining jobs: %w", err)
	}
	fmt.Println("rpserved: done")
	return nil
}
