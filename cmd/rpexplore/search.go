package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/stacks"
)

// search.go — the -search face of rpexplore: guided exploration that probes
// the design space lazily instead of materializing it, verifies every
// returned optimum through the -audit-oracle, and (with -search-selfcheck)
// proves the answer equals the exhaustive one on spaces small enough to
// materialize.

// searchFlags bundles the guided-search CLI options.
type searchFlags struct {
	spec      *dse.SearchSpec
	out       string
	selfcheck bool
}

// selfcheckLimit caps the grids -search-selfcheck will materialize; beyond
// it the flag is an error, since the whole point of a search is not to.
const selfcheckLimit = 1 << 20

// runSearch executes a guided search over the space, prints the result,
// and optionally writes it as JSON and differentially checks it against
// the exhaustive answer.
func runSearch(sp *dse.Space, sf searchFlags, r *experiments.Runner, a *experiments.App,
	app, method string, par, batch int, checkpoint, traceOut string, au auditFlags) error {
	opts := dse.SearchOptions{
		ExploreOptions: dse.ExploreOptions{
			Parallelism: par,
			BatchSize:   batch,
			Setup:       a.SimTime + a.AnalyzeTime,
		},
		MicroOps: len(a.Trace.Records),
	}
	if traceOut != "" {
		// A search's span count is probe-driven and unknown up front; the
		// default flight-recorder ring keeps the most recent rounds, which is
		// what a timeline of a converging search wants anyway.
		opts.Tracer = obs.NewTracer(obs.DefaultCapacity)
	}
	if checkpoint != "" {
		// The probe-log analogue of the sweep checkpoint: each probe round
		// persists as one chunk file and resume replays them. Unlike sweep
		// chunks, the log survives success — it is the auditable record of
		// exactly which points the search probed, and re-running the same
		// search replays it entirely instead of probing again.
		opts.Checkpoint = &dse.Checkpoint{Dir: checkpoint}
	}
	// Every returned optimum is verified online through the chosen oracle —
	// the same recipes the shadow audit uses for exhaustive sweeps.
	var oracle audit.Oracle
	switch {
	case au.oracle == "graph":
		oracle = &audit.GraphOracle{Graph: a.Graph}
	case method == "sim":
		oracle = &audit.SimOracle{Cfg: r.Cfg, UOps: a.UOps}
	default:
		oracle = &audit.SimOracle{
			Cfg:       r.Cfg,
			CodeLines: a.CodeLines,
			DataLines: a.DataLines,
			Warm:      a.WarmUOps,
			UOps:      a.UOps,
		}
	}
	opts.Verify = func(l stacks.Latencies) (float64, error) {
		c, _, err := oracle.Truth(context.Background(), l)
		return c, err
	}

	grid, _ := sp.SizeSaturating()
	fmt.Printf("%s: %s search over %d latency points with %s (lazy probing)\n",
		app, sf.spec.Mode, grid, method)

	var res *dse.SearchResult
	var err error
	switch method {
	case "rpstacks":
		res, err = dse.SearchRpStacks(a.Analysis, r.Cfg.Lat, sp, sf.spec, opts)
	case "graph":
		res, err = dse.SearchGraph(a.Graph, r.Cfg.Lat, sp, sf.spec, opts)
	case "sim":
		res, err = dse.SearchSim(r.Cfg, a.UOps, sp, sf.spec, opts)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}
	printSearch(res, sp, len(a.Trace.Records))
	if traceOut != "" {
		if err := writeTrace(traceOut, opts.Tracer); err != nil {
			return err
		}
	}
	if checkpoint != "" {
		fmt.Fprintf(os.Stderr, "probe log: kept in %s (re-running this search replays it; delete to probe afresh)\n", checkpoint)
	}
	if sf.out != "" {
		payload, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding search result: %w", err)
		}
		if err := os.WriteFile(sf.out, append(payload, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing search result: %w", err)
		}
		fmt.Fprintf(os.Stderr, "search: wrote %s\n", sf.out)
	}
	if sf.selfcheck {
		if err := searchSelfcheck(res, sp, sf.spec, r, a, method, par, batch); err != nil {
			return err
		}
	}
	return nil
}

// searchSelfcheck materializes the grid, sweeps it exhaustively through the
// same engine, folds the sweep into the mode's exact answer, and fails hard
// on any divergence — the CLI form of the exhaustive-equivalence tests.
func searchSelfcheck(res *dse.SearchResult, sp *dse.Space, spec *dse.SearchSpec,
	r *experiments.Runner, a *experiments.App, method string, par, batch int) error {
	if _, ok := sp.SizeWithin(selfcheckLimit); !ok {
		return fmt.Errorf("-search-selfcheck needs a materializable space (at most %d points)", selfcheckLimit)
	}
	plan, err := dse.NewSearchPlan(sp, spec)
	if err != nil {
		return err
	}
	points, err := plan.Enumerate(r.Cfg.Lat)
	if err != nil {
		return err
	}
	opts := dse.ExploreOptions{Parallelism: par, BatchSize: batch}
	var rep *dse.Report
	switch method {
	case "rpstacks":
		rep, err = dse.ExploreRpStacksOpts(a.Analysis, points, opts)
	case "graph":
		rep, err = dse.ExploreGraphOpts(a.Graph, points, opts)
	case "sim":
		rep, err = dse.ExploreSimOpts(r.Cfg, a.UOps, points, opts)
	}
	if err != nil {
		return err
	}
	cycles := make([]float64, len(rep.Results))
	for i, p := range rep.Results {
		cycles[i] = p.Cycles
	}
	ref, err := plan.Exhaustive(cycles, len(a.Trace.Records))
	if err != nil {
		return err
	}
	if err := dse.EqualAnswers(res, ref); err != nil {
		return fmt.Errorf("selfcheck: search answer diverged from the exhaustive sweep: %w", err)
	}
	fmt.Printf("selfcheck: search answer equals the exhaustive sweep over all %d points (%d probed)\n",
		len(points), res.Probes+res.ResumedProbes)
	return nil
}

// printSearch renders the search outcome: probe telemetry, verification,
// then the answer — one optimum, or the Pareto frontier.
func printSearch(res *dse.SearchResult, sp *dse.Space, microOps int) {
	uops := float64(microOps)
	if res.ResumedProbes > 0 {
		fmt.Printf("probe log: resumed %d probes; %d new\n", res.ResumedProbes, res.Probes)
	}
	fmt.Printf("search: %d probes in %d rounds (peak %d boxes) over %v — %.4g%% of the grid\n",
		res.Probes, res.Rounds, res.PeakBoxes, res.Wall.Round(time.Millisecond),
		100*float64(res.Probes)/float64(res.GridPoints))
	if !res.Converged {
		fmt.Println("search: stopped by the round cap before proving exactness; the answer is best-effort")
	}
	if res.Verified {
		fmt.Printf("verify: every returned optimum re-derived by the oracle (max CPI error %.4g%%)\n",
			res.VerifyMaxErrPct)
	}
	switch {
	case res.Mode == dse.SearchTarget && !res.Feasible:
		fmt.Printf("target: no point meets the budget (the space floors at CPI %.4f)\n",
			res.FastestCycles/uops)
	case res.Best != nil:
		fmt.Printf("best: CPI %.4f cost %.4g  %s\n",
			res.Best.Cycles/uops, res.Best.Cost, searchPointMods(res.Best, sp))
	}
	if len(res.Frontier) > 0 {
		fmt.Printf("pareto frontier (%d points, fastest first):\n", len(res.Frontier))
		for i := range res.Frontier {
			p := &res.Frontier[i]
			fmt.Printf("  CPI %.4f cost %.4g  %s\n", p.Cycles/uops, p.Cost, searchPointMods(p, sp))
		}
	}
}

func searchPointMods(p *dse.SearchPoint, sp *dse.Space) string {
	var mods []string
	for _, ax := range sp.Axes {
		mods = append(mods, fmt.Sprintf("%s=%.0f", ax.Event, p.Lat[ax.Event]))
	}
	return strings.Join(mods, " ")
}
