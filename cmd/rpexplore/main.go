// Command rpexplore runs batch latency-domain design space exploration over
// one workload with a selectable engine — RpStacks, graph reconstruction or
// per-point re-simulation — and reports the best points under a CPI target.
//
// Usage:
//
//	rpexplore -app 416.gamess -axis L1D=1,2,3,4 -axis FpAdd=2,4,6 \
//	          [-method rpstacks|graph|sim] [-target 0.55] [-top 10] [-n 60000] \
//	          [-parallelism 8] [-chunk 64] [-batch 8] [-checkpoint sweep.ckpt/] \
//	          [-trace-out sweep.trace.json] [-progress] [-lossless] \
//	          [-audit-fraction 0.1] [-audit-seed 1] [-audit-oracle sim|graph] \
//	          [-audit-drift 5] [-audit-out audit.json] \
//	          [-search halving|pareto|target;cpi=0.55;cost=L1D:2] \
//	          [-search-out search.json] [-search-selfcheck]
//
// With -search, the exhaustive sweep is replaced by a guided search that
// probes the space lazily — the grid is never materialized, so the axes may
// span spaces far too large to enumerate. Modes: halving (global minimum
// cycles), pareto (the exact CPI-vs-cost frontier under the spec's per-axis
// cost weights) and target (cheapest point reaching the cpi budget; -target
// doubles as the budget when the spec has no cpi key). Every returned
// optimum is re-derived through the -audit-oracle; -checkpoint doubles as a
// crash-safe probe log that is kept on success as the record of every
// probed point; -search-selfcheck materializes small grids and fails unless
// the search answer equals the exhaustive one.
//
// With -checkpoint, every completed chunk of design points is persisted
// atomically under the given directory: a killed sweep re-run with the same
// flags resumes where it stopped and returns results identical to an
// uninterrupted run. A directory written by a different sweep (other
// method, workload or axes) is rejected. Once the sweep completes and its
// report is printed, the chunk files are removed (failed or interrupted
// runs keep them, so resume always has its state).
//
// With -batch, the graph and rpstacks engines evaluate that many design
// points per pass over their model (0, the default, autotunes the width; 1
// forces the scalar per-point path; sim is always scalar). Batching is an
// execution detail: results, fingerprints and checkpoints are identical at
// every width.
//
// With -trace-out, the run's span flight recorder is exported as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing — one span per chunk for exhaustive sweeps, one per probe
// round for guided searches. -progress prints a periodic points/sec + ETA
// line to stderr, including how many chunks were restored from a checkpoint;
// -progress-json emits the same meter as NDJSON events in the journal stream
// schema (the frames rpserved serves over SSE), ending with a terminal done
// event, so scripts parse one format wherever the sweep ran.
//
// With -audit-fraction, a shadow accuracy audit scores the sweep after it
// finishes: a deterministic, fingerprint-seeded sample of design points is
// re-derived through the chosen oracle (sim: re-run the ground-truth
// simulator, the paper's accuracy definition; graph: re-evaluate the
// dependence-graph model, exact for a -lossless RpStacks analysis) and the
// per-point CPI error plus per-class stall-stack divergence is summarized —
// and written as a JSON report to -audit-out. -lossless disables the
// similarity merging and segmentation of the RpStacks analysis (exponential
// in the worst case: keep -n tiny), making its predictions provably equal to
// the graph model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/stacks"
)

// axisFlags collects repeated -axis flags. Parsing is shared with the
// rpserved job-request decoder via dse.ParseAxisSpec, so the CLI and the
// service accept exactly the same axis syntax.
type axisFlags []dse.Axis

func (a *axisFlags) String() string { return fmt.Sprint(*a) }

func (a *axisFlags) Set(v string) error {
	ax, err := dse.ParseAxisSpec(v)
	if err != nil {
		return err
	}
	for _, prev := range *a {
		if prev.Event == ax.Event {
			return fmt.Errorf("duplicate -axis for event %s", ax.Event)
		}
	}
	*a = append(*a, ax)
	return nil
}

func main() {
	var axes axisFlags
	app := flag.String("app", "416.gamess", "workload name")
	method := flag.String("method", "rpstacks", "engine: rpstacks, graph or sim")
	target := flag.Float64("target", 0, "CPI target (0: report the best points)")
	top := flag.Int("top", 10, "points to print")
	n := flag.Int("n", 60000, "measured µops")
	par := flag.Int("parallelism", runtime.GOMAXPROCS(0), "sweep workers (1: serial)")
	chunk := flag.Int("chunk", 0, "design points per work unit (0: automatic)")
	batch := flag.Int("batch", 0, "design points per model pass for the graph and rpstacks engines (0: autotuned, 1: scalar; results are identical at every width)")
	checkpoint := flag.String("checkpoint", "", "directory for crash-safe sweep resume (empty: off)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the sweep to this file (empty: off)")
	progress := flag.Bool("progress", false, "print a periodic progress line to stderr")
	progressJSON := flag.Bool("progress-json", false, "emit progress as NDJSON events to stderr (the journal stream schema rpserved serves over SSE) instead of the human line")
	lossless := flag.Bool("lossless", false, "disable RpStacks merging and segmentation: predictions become exactly the graph model (exponential worst case; keep -n tiny)")
	search := flag.String("search", "", "guided search instead of an exhaustive sweep: halving|pareto|target with ;cpi= ;rounds= ;cost=EV:W,... keys; probes lazily, so the axes may span grids far too large to materialize")
	searchOut := flag.String("search-out", "", "write the search result JSON to this file (empty: off)")
	searchSelfcheck := flag.Bool("search-selfcheck", false, "after the search, sweep the materialized grid and fail unless the answers are exactly equal (small spaces only)")
	auditFraction := flag.Float64("audit-fraction", 0, "share of design points to shadow-audit against ground truth (0: off, 1: all)")
	auditSeed := flag.Uint64("audit-seed", 0, "seed mixed into the deterministic audit sample")
	auditOracle := flag.String("audit-oracle", "sim", "audit ground truth: sim (re-simulate) or graph (dependence-graph model)")
	auditDrift := flag.Float64("audit-drift", 0, "per-point CPI error percentage counted as drift (0: default threshold)")
	auditOut := flag.String("audit-out", "", "write the audit report JSON to this file (empty: off)")
	flag.Var(&axes, "axis", "latency axis, e.g. L1D=1,2,3,4 (repeatable)")
	flag.Parse()

	if *par < 1 {
		fmt.Fprintf(os.Stderr, "rpexplore: -parallelism must be at least 1, got %d\n", *par)
		os.Exit(2)
	}
	// -chunk 0 is the unset default (automatic sizing); an explicit
	// non-positive chunk is an error, not something to silently clamp.
	chunkSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "chunk" {
			chunkSet = true
		}
	})
	if chunkSet && *chunk < 1 {
		fmt.Fprintf(os.Stderr, "rpexplore: -chunk must be at least 1, got %d (omit the flag for automatic sizing)\n", *chunk)
		os.Exit(2)
	}
	if *batch < 0 {
		fmt.Fprintf(os.Stderr, "rpexplore: -batch must be non-negative, got %d (0 autotunes the width)\n", *batch)
		os.Exit(2)
	}
	if *auditFraction < 0 || *auditFraction > 1 {
		fmt.Fprintf(os.Stderr, "rpexplore: -audit-fraction must be in [0, 1], got %g\n", *auditFraction)
		os.Exit(2)
	}
	if *auditOracle != "sim" && *auditOracle != "graph" {
		fmt.Fprintf(os.Stderr, "rpexplore: -audit-oracle must be sim or graph, got %q\n", *auditOracle)
		os.Exit(2)
	}
	if *auditDrift < 0 {
		fmt.Fprintf(os.Stderr, "rpexplore: -audit-drift must be non-negative, got %g\n", *auditDrift)
		os.Exit(2)
	}

	au := auditFlags{
		fraction: *auditFraction,
		seed:     *auditSeed,
		oracle:   *auditOracle,
		drift:    *auditDrift,
		out:      *auditOut,
	}
	sf := searchFlags{out: *searchOut, selfcheck: *searchSelfcheck}
	if *search != "" {
		spec, err := dse.ParseSearchSpec(*search)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpexplore:", err)
			os.Exit(2)
		}
		// -target doubles as the budget of a target search whose spec has no
		// cpi key; with any other mode it selects the exhaustive ranking
		// report, which a search never prints.
		if spec.Mode == dse.SearchTarget && spec.TargetCPI == 0 {
			spec.TargetCPI = *target
		}
		if spec.Mode == dse.SearchTarget && spec.TargetCPI == 0 {
			fmt.Fprintln(os.Stderr, "rpexplore: a target search needs a cpi budget (spec key cpi, or -target)")
			os.Exit(2)
		}
		if spec.Mode != dse.SearchTarget && *target > 0 {
			fmt.Fprintf(os.Stderr, "rpexplore: -target with a %s search is meaningless; use -search target\n", spec.Mode)
			os.Exit(2)
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "rpexplore:", err)
			os.Exit(2)
		}
		if au.fraction > 0 {
			fmt.Fprintln(os.Stderr, "rpexplore: search optima are verified online through -audit-oracle; -audit-fraction applies to exhaustive sweeps")
			os.Exit(2)
		}
		if *progress || *progressJSON {
			fmt.Fprintln(os.Stderr, "rpexplore: -progress and -progress-json need a fixed point count; a search probes lazily")
			os.Exit(2)
		}
		sf.spec = spec
	} else if *searchOut != "" || *searchSelfcheck {
		fmt.Fprintln(os.Stderr, "rpexplore: -search-out and -search-selfcheck need -search")
		os.Exit(2)
	}
	if *progress && *progressJSON {
		fmt.Fprintln(os.Stderr, "rpexplore: -progress and -progress-json are mutually exclusive")
		os.Exit(2)
	}
	if err := run(*app, axes, *method, *target, *top, *n, *par, *chunk, *batch, *checkpoint, *traceOut, *progress, *progressJSON, *lossless, au, sf); err != nil {
		fmt.Fprintln(os.Stderr, "rpexplore:", err)
		os.Exit(1)
	}
}

// auditFlags bundles the shadow-audit CLI options.
type auditFlags struct {
	fraction float64
	seed     uint64
	oracle   string
	drift    float64
	out      string
}

func run(app string, axes axisFlags, method string, target float64, top, n, par, chunk, batch int, checkpoint, traceOut string, progress, progressJSON, lossless bool, au auditFlags, sf searchFlags) error {
	if len(axes) == 0 {
		axes = axisFlags{
			{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
			{Event: stacks.FpAdd, Values: []float64{2, 4, 6}},
			{Event: stacks.FpMul, Values: []float64{2, 4, 6}},
		}
	}
	sp := dse.Space{Axes: axes}
	if err := sp.Validate(); err != nil {
		return err
	}
	if _, exact := sp.SizeSaturating(); !exact && sf.spec == nil {
		return fmt.Errorf("the axes span more design points than fit in an int; a -search mode explores such spaces lazily")
	}
	r := experiments.NewRunner(n)
	if lossless {
		// One whole-trace segment, no path cap, no merging: the analysis
		// carries every path and predicts exactly what the graph model does.
		r.Opts.DisableMerge = true
		r.Opts.MaxStacks = 0
		r.Opts.SegmentLength = n
	}
	a, err := r.App(app)
	if err != nil {
		return err
	}
	if sf.spec != nil {
		return runSearch(&sp, sf, r, a, app, method, par, batch, checkpoint, traceOut, au)
	}
	points := sp.Enumerate(r.Cfg.Lat)
	opts := dse.ExploreOptions{Parallelism: par, ChunkSize: chunk, BatchSize: batch,
		Setup: a.SimTime + a.AnalyzeTime, NeedFingerprint: au.fraction > 0}
	if checkpoint != "" {
		// A finished exploration deletes its chunk files: they exist to
		// survive crashes, and a report on stdout supersedes them. Failed or
		// interrupted runs keep them for the next -checkpoint resume.
		opts.Checkpoint = &dse.Checkpoint{Dir: checkpoint, RemoveOnSuccess: true}
	}
	var prog *obs.Progress
	var progJSON *journal.NDJSON
	if traceOut != "" || progress || progressJSON {
		var topts []obs.Option
		if progress {
			prog = obs.NewProgress(os.Stderr, len(points), 0)
			topts = append(topts, obs.WithOnEnd(prog.Observe))
		}
		if progressJSON {
			progJSON = journal.NewNDJSON(os.Stderr, len(points), 0, nil)
			topts = append(topts, obs.WithOnEnd(progJSON.Observe))
		}
		// One span per chunk plus the root and any resume markers: sizing
		// the ring to the point count can never drop a record.
		opts.Tracer = obs.NewTracer(len(points)+16, topts...)
	}
	workers := max(par, 1)
	if workers > len(points) {
		workers = len(points) // the sweep never runs more workers than points
	}
	noun := "workers"
	if workers == 1 {
		noun = "worker"
	}
	fmt.Printf("%s: exploring %d latency points with %s (%d %s)\n",
		app, len(points), method, workers, noun)

	var rep *dse.Report
	switch method {
	case "rpstacks":
		rep, err = dse.ExploreRpStacksOpts(a.Analysis, points, opts)
	case "graph":
		rep, err = dse.ExploreGraphOpts(a.Graph, points, opts)
	case "sim":
		rep, err = dse.ExploreSimOpts(r.Cfg, a.UOps, points, opts)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}
	if prog != nil {
		prog.Flush()
	}
	if progJSON != nil {
		progJSON.Close("done")
	}
	if traceOut != "" {
		if err := writeTrace(traceOut, opts.Tracer); err != nil {
			return err
		}
	}
	elapsed := rep.Wall
	if rep.Resumed > 0 {
		fmt.Printf("checkpoint: resumed %d of %d points from %s\n", rep.Resumed, len(points), checkpoint)
	}
	if rep.Batch > 1 {
		fmt.Printf("batch: %d design points per model pass\n", rep.Batch)
	}

	// The audit reads rep.Results by index, so it runs before the ranking
	// sort below reorders them.
	if au.fraction > 0 {
		if err := runAudit(rep, r, a, method, au, par); err != nil {
			return err
		}
	}

	uops := float64(len(a.Trace.Records))
	results := rep.Results
	sort.Slice(results, func(i, j int) bool { return results[i].Cycles < results[j].Cycles })
	meeting := len(results)
	if target > 0 {
		meeting = len(dse.BestUnder(results, target*uops))
		fmt.Printf("%d points meet CPI target %.3f\n", meeting, target)
	}
	if top > len(results) {
		top = len(results)
	}
	if len(rep.Workers) > 1 {
		var busiest time.Duration
		for _, wt := range rep.Workers {
			if wt.Busy > busiest {
				busiest = wt.Busy
			}
		}
		fmt.Printf("sweep: %v wall over %d workers (busiest %v, per-point %v)\n",
			elapsed.Round(time.Microsecond), len(rep.Workers),
			busiest.Round(time.Microsecond), rep.PerPoint)
	}
	fmt.Printf("\nbest %d points (of %d, explored in %v):\n", top, len(results), elapsed.Round(time.Millisecond))
	for _, res := range results[:top] {
		var mods []string
		for _, ax := range axes {
			mods = append(mods, fmt.Sprintf("%s=%.0f", ax.Event, res.Lat[ax.Event]))
		}
		fmt.Printf("  CPI %.4f  %s\n", res.Cycles/uops, strings.Join(mods, " "))
	}
	return nil
}

// runAudit shadow-audits the finished sweep and prints its summary. The
// oracle recipe mirrors how the sweep itself was produced: the sim engine is
// re-simulated cold (exactly what dse.ExploreSimOpts runs per point, so its
// self-audit is bitwise zero), the model engines are audited against a
// simulator warmed with the same code, data and µop prefix the analysis
// substrate saw. -audit-oracle graph swaps in the dependence-graph model,
// the exact reference for a -lossless RpStacks analysis.
func runAudit(rep *dse.Report, r *experiments.Runner, a *experiments.App, method string, au auditFlags, par int) error {
	var oracle audit.Oracle
	switch {
	case au.oracle == "graph":
		oracle = &audit.GraphOracle{Graph: a.Graph}
	case method == "sim":
		oracle = &audit.SimOracle{Cfg: r.Cfg, UOps: a.UOps}
	default:
		oracle = &audit.SimOracle{
			Cfg:       r.Cfg,
			CodeLines: a.CodeLines,
			DataLines: a.DataLines,
			Warm:      a.WarmUOps,
			UOps:      a.UOps,
		}
	}
	var decompose func(*stacks.Latencies) stacks.Stack
	switch method {
	case "rpstacks":
		decompose = audit.RpStacksDecompose(a.Analysis)
	case "graph":
		decompose = audit.GraphDecompose(a.Graph)
	}
	arep, err := audit.Run(rep, oracle, decompose, audit.Options{
		Fraction:    au.fraction,
		Seed:        au.seed,
		DriftPct:    au.drift,
		Parallelism: par,
		Logger:      slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		return err
	}
	fmt.Println(arep.Summary())
	for _, p := range arep.Worst {
		fmt.Printf("  worst: point %d error %.4f%% (class %s)  %s\n",
			p.Index, p.ErrorPct, p.WorstClass, p.Config())
	}
	if au.out != "" {
		payload, err := json.MarshalIndent(arep, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding audit report: %w", err)
		}
		if err := os.WriteFile(au.out, append(payload, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing audit report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "audit: wrote %s\n", au.out)
	}
	return nil
}

// writeTrace exports the tracer's flight recorder as Chrome trace-event JSON
// — shared by the exhaustive and search paths of -trace-out.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := obs.WriteChromeTrace(f, tr.Snapshot()); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %s\n", path)
	return nil
}
