// Command rptrace generates, saves and inspects dynamic traces: the raw
// material of the RpStacks pipeline (paper Figure 8b).
//
// Usage:
//
//	rptrace gen  -app 429.mcf -o mcf.trc [-n 60000] [-warm 180000]
//	rptrace dump -i mcf.trc [-from 0] [-count 20]
//	rptrace stat -i mcf.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: rptrace gen|dump|stat [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	default:
		err = fmt.Errorf("unknown command %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rptrace:", err)
		os.Exit(1)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	app := fs.String("app", "416.gamess", "workload name")
	out := fs.String("o", "", "output trace file (required)")
	n := fs.Int("n", 60000, "measured µops")
	warm := fs.Int("warm", 0, "warmup µops (default 3x measured)")
	seed := fs.Int64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	prof, ok := workload.ByName(*app)
	if !ok {
		return fmt.Errorf("unknown workload %q", *app)
	}
	if *warm == 0 {
		*warm = 3 * *n
	}
	gen := workload.NewGenerator(prof, *seed)
	stream := gen.Take(*warm + *n)
	cut := *warm
	for cut < len(stream) && !stream[cut].SoM {
		cut++
	}
	sim, err := cpu.New(config.Baseline())
	if err != nil {
		return err
	}
	sim.WarmCode(gen.CodeLines())
	sim.WarmData(gen.DataLines())
	sim.WarmUp(stream[:cut])
	tr, err := sim.Run(stream[cut:])
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	fmt.Printf("%s: %d µops, %d cycles (CPI %.3f) -> %s\n",
		*app, tr.MicroOps(), tr.Cycles, tr.CPI(), *out)
	// The digest is the trace's content address in the rpserved artifact
	// cache, so jobs over this file can be correlated with server metrics.
	fmt.Printf("digest: %s\n", trace.Digest(tr))
	return f.Close()
}

func read(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	from := fs.Int("from", 0, "first µop")
	count := fs.Int("count", 20, "µops to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("dump: -i is required")
	}
	tr, err := read(*in)
	if err != nil {
		return err
	}
	hi := *from + *count
	if hi > len(tr.Records) {
		hi = len(tr.Records)
	}
	for i := *from; i < hi; i++ {
		r := &tr.Records[i]
		flags := ""
		if r.SoM {
			flags += "S"
		}
		if r.EoM {
			flags += "E"
		}
		if r.Mispredicted {
			flags += "!"
		}
		fmt.Printf("%7d %-6s %-2s pc=%#x f=%d n=%d d=%d r=%d e=%d p=%d c=%d",
			r.Seq, r.Class, flags, r.PC,
			r.T[trace.SFetch], r.T[trace.SRename], r.T[trace.SDispatch],
			r.T[trace.SReady], r.T[trace.SIssue], r.T[trace.SComplete], r.T[trace.SCommit])
		if r.Class.IsMem() {
			fmt.Printf(" addr=%#x lvl=%s", r.Addr, r.DataLevel)
		}
		fmt.Println()
	}
	return nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stat: -i is required")
	}
	tr, err := read(*in)
	if err != nil {
		return err
	}
	var classes [isa.NumOpClasses]int
	var dServed [mem.NumLevels]int
	mispred := 0
	for i := range tr.Records {
		r := &tr.Records[i]
		classes[r.Class]++
		if r.Class == isa.Load {
			dServed[r.DataLevel]++
		}
		if r.Mispredicted {
			mispred++
		}
	}
	fmt.Printf("µops: %d  macro-ops: %d  cycles: %d  CPI: %.3f\n",
		tr.MicroOps(), tr.MacroOps(), tr.Cycles, tr.CPI())
	fmt.Printf("digest: %s\n", trace.Digest(tr))
	fmt.Printf("mispredicted branches: %d\n", mispred)
	fmt.Println("class mix:")
	for c := isa.OpClass(0); c < isa.NumOpClasses; c++ {
		if classes[c] > 0 {
			fmt.Printf("  %-7s %6d (%.1f%%)\n", c, classes[c],
				100*float64(classes[c])/float64(tr.MicroOps()))
		}
	}
	fmt.Printf("loads served: L1=%d L2=%d Mem=%d\n", dServed[mem.LvlL1], dServed[mem.LvlL2], dServed[mem.LvlMem])
	return nil
}
