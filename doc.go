// Package repro is a from-scratch Go reproduction of "RpStacks: Fast and
// Accurate Processor Design Space Exploration Using Representative
// Stall-Event Stacks" (Lee, Jang & Kim, MICRO 2014).
//
// The repository builds the complete stack the paper's methodology needs: a
// cycle-level out-of-order x86-style timing simulator (internal/cpu) over a
// cache/TLB/branch-predictor substrate (internal/mem, internal/branch),
// deterministic SPEC-CPU-2006-like synthetic workloads (internal/workload),
// the Table I dependence-graph model (internal/depgraph), the RpStacks
// algorithm itself (internal/core), the CP1 and FMT comparison baselines
// (internal/baseline), SimPoint-style sampling (internal/simpoint), a design
// space exploration driver (internal/dse), and an experiment harness that
// regenerates every figure and table of the paper's evaluation
// (internal/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate each figure: go test -bench=Fig -benchmem .
package repro
